// Command failover walks through the paper's availability story: the
// communication layer maintains majority-quorum views, and as long as a
// majority view survives, the replicated database keeps committing.
//
// Timeline demonstrated on a 5-site atomic-broadcast cluster:
//
//  1. healthy cluster commits;
//  2. one site crashes — commits continue (protocol A never waits for the
//     dead site; R and C resume after the view change);
//  3. a partition isolates two sites — the majority side keeps working,
//     the minority side refuses updates rather than diverge;
//  4. the partition heals — the cluster reunifies and commits everywhere.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// PiggybackWrites keeps all replication traffic on the totally ordered
	// stream, which is what makes the post-partition state transfer and
	// gap repair below complete (causally disseminated writes cannot be
	// replayed across a partition).
	cluster, err := repro.New(repro.Options{
		Sites:           5,
		Protocol:        repro.Atomic,
		Membership:      true,
		PiggybackWrites: true,
		Seed:            9,
	})
	if err != nil {
		return err
	}
	step := func(format string, args ...any) {
		fmt.Printf("[t=%8v] %s\n", cluster.Now().Round(time.Millisecond), fmt.Sprintf(format, args...))
	}

	// 1. Healthy cluster.
	res, err := cluster.Submit(0, repro.NewTxn().Write("epoch", []byte("healthy")))
	if err != nil {
		return err
	}
	step("healthy cluster: write committed=%v in %v", res.Committed, res.Latency)

	// 2. Crash site 4.
	cluster.Crash(4)
	step("site 4 crashed")
	res, err = cluster.Submit(1, repro.NewTxn().Write("epoch", []byte("one-down")))
	if err != nil {
		return err
	}
	step("with 4/5 sites: write committed=%v in %v (no wait for the dead site)", res.Committed, res.Latency)
	if err := cluster.Advance(2 * time.Second); err != nil {
		return err
	}
	step("failure detector + view change settled; view excludes site 4")

	// 3. Partition {0,1} away from {2,3}. With site 4 dead that's 2 vs 2 of
	// the original 5 — neither side alone is a majority of 5, so reunify
	// sites 2,3 with... keep 0 alone instead: {0} vs {1,2,3} = majority 3/5.
	cluster.Partition([]int{0}, []int{1, 2, 3})
	step("partition: {0} | {1,2,3} (site 4 still down)")
	if err := cluster.Advance(3 * time.Second); err != nil {
		return err
	}
	maj, err := cluster.Submit(2, repro.NewTxn().Write("epoch", []byte("partitioned")))
	if err != nil {
		return err
	}
	step("majority side {1,2,3}: write committed=%v", maj.Committed)
	minr, err := cluster.Submit(0, repro.NewTxn().Write("epoch", []byte("split-brain?")))
	if err != nil && minr.Committed {
		return err
	}
	step("minority side {0}: write committed=%v (refused: %s)", minr.Committed, minr.Reason)
	if minr.Committed {
		return fmt.Errorf("minority committed — split brain!")
	}

	// 4. Heal.
	cluster.Heal()
	step("partition healed")
	if err := cluster.Advance(3 * time.Second); err != nil {
		return err
	}
	res, err = cluster.Submit(0, repro.NewTxn().Write("epoch", []byte("reunified")))
	if err != nil {
		return err
	}
	step("reunified: write at former minority site committed=%v", res.Committed)
	v, _ := cluster.Get(3, "epoch")
	step("site 3 reads epoch=%q — replicas agree", v)
	if string(v) != "reunified" {
		return fmt.Errorf("unexpected final value %q", v)
	}
	return nil
}
