package repro

// The macro-benchmarks below regenerate the evaluation suite (experiments
// E1-E10 in DESIGN.md, tables in EXPERIMENTS.md) and surface each
// experiment's headline numbers as benchmark metrics; cmd/benchrunner
// prints the full tables. The micro-benchmarks cover the hot substrate
// paths (lock table, vector clocks, versioned store, WAL, broadcast stack).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE1 -benchtime=1x   # one full E1 sweep

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/experiments"
	"repro/internal/lockmgr"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// benchConfig keeps the macro-benchmarks quick enough to iterate on; run
// cmd/benchrunner (without -quick) for the full sweeps.
var benchConfig = experiments.Config{Quick: true}

// runExperiment executes one experiment per iteration and republishes its
// headline metrics through the benchmark reporter.
func runExperiment(b *testing.B, f func(experiments.Config) (*experiments.Report, error), keys ...string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = f(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) > 0 {
			b.Fatalf("expectation violated: %v", rep.Violations)
		}
	}
	for _, k := range keys {
		if v, ok := rep.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkE1MessagesPerTxn regenerates the message-complexity table:
// per-commit unicast counts against the analytical model (paper §3-§5
// message analysis).
func BenchmarkE1MessagesPerTxn(b *testing.B) {
	runExperiment(b, experiments.E1Messages,
		"reliable/n=5/msgs_per_commit",
		"causal/n=5/msgs_per_commit",
		"atomic/n=5/msgs_per_commit",
		"baseline/n=5/msgs_per_commit",
	)
}

// BenchmarkE2CommitLatency regenerates the commit-latency comparison.
func BenchmarkE2CommitLatency(b *testing.B) {
	runExperiment(b, experiments.E2CommitLatency,
		"reliable/n=5/mean_latency_us",
		"causal/n=5/mean_latency_us",
		"atomic/n=5/mean_latency_us",
		"baseline/n=5/mean_latency_us",
	)
}

// BenchmarkE3AbortRate regenerates the contention sweep.
func BenchmarkE3AbortRate(b *testing.B) {
	runExperiment(b, experiments.E3AbortContention,
		"reliable/hot=0.6/abort_rate",
		"causal/hot=0.6/abort_rate",
		"atomic/hot=0.6/abort_rate",
		"baseline/hot=0.6/abort_rate",
	)
}

// BenchmarkE4ThroughputSites regenerates the cluster-size scaling table.
func BenchmarkE4ThroughputSites(b *testing.B) {
	runExperiment(b, experiments.E4ThroughputSites,
		"reliable/n=7/throughput",
		"causal/n=7/throughput",
		"atomic/n=7/throughput",
	)
}

// BenchmarkE5WriteMix regenerates the read-only fraction sweep.
func BenchmarkE5WriteMix(b *testing.B) {
	runExperiment(b, experiments.E5WriteMix,
		"causal/ro=0.00/abort_rate",
		"causal/ro=0.95/abort_rate",
	)
}

// BenchmarkE6CausalHeartbeat regenerates the implicit-ack stall study.
func BenchmarkE6CausalHeartbeat(b *testing.B) {
	runExperiment(b, experiments.E6CausalHeartbeat,
		"hb=off/unfinished",
		"hb=25ms/mean_latency_us",
		"hb=500ms/mean_latency_us",
	)
}

// BenchmarkE7Failover regenerates the availability-under-crash table.
func BenchmarkE7Failover(b *testing.B) {
	runExperiment(b, experiments.E7Availability,
		"reliable/post_crash_commits",
		"causal/post_crash_commits",
		"atomic/post_crash_commits",
	)
}

// BenchmarkE8BroadcastAblation regenerates the ordering and relay
// ablations.
func BenchmarkE8BroadcastAblation(b *testing.B) {
	runExperiment(b, experiments.E8Ablation,
		"order=sequencer/msgs_per_commit",
		"order=isis/msgs_per_commit",
		"relay=false/committed",
		"relay=true/committed",
	)
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkLockAcquireRelease(b *testing.B) {
	m := lockmgr.New()
	keys := make([]message.Key, 64)
	for i := range keys {
		keys[i] = message.Key(fmt.Sprintf("k%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := message.TxnID{Site: 0, Seq: uint64(i + 1)}
		for j := 0; j < 4; j++ {
			m.Acquire(id, keys[(i*4+j)%64], lockmgr.Exclusive, false, nil)
		}
		m.ReleaseAll(id)
	}
}

func BenchmarkLockContendedQueue(b *testing.B) {
	m := lockmgr.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		holder := message.TxnID{Site: 0, Seq: uint64(2*i + 1)}
		waiter := message.TxnID{Site: 1, Seq: uint64(2*i + 2)}
		m.Acquire(holder, "hot", lockmgr.Exclusive, false, nil)
		m.Acquire(waiter, "hot", lockmgr.Shared, true, func() {})
		m.ReleaseAll(holder)
		m.ReleaseAll(waiter)
	}
}

func BenchmarkVClockCompare(b *testing.B) {
	x := vclock.VC{4, 9, 2, 7, 1, 8, 3, 6}
	y := vclock.VC{4, 9, 3, 7, 1, 8, 3, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkVClockMerge(b *testing.B) {
	x := vclock.New(8)
	y := vclock.VC{4, 9, 3, 7, 1, 8, 3, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x.Merge(y)
	}
}

func BenchmarkStoreApplyGet(b *testing.B) {
	s := storage.New(nil)
	val := message.Value("0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := message.Key(fmt.Sprintf("k%d", i%1024))
		id := message.TxnID{Site: 0, Seq: uint64(i + 1)}
		if err := s.Apply(id, []message.KV{{Key: key, Value: val}}, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Get(key); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	w := storage.NewWAL(discard{})
	rec := storage.Record{
		Index: 1,
		Txn:   message.TxnID{Site: 1, Seq: 2},
		Writes: []message.KV{
			{Key: "account:12345", Value: message.Value("0123456789abcdef0123456789abcdef")},
			{Key: "account:67890", Value: message.Value("0123456789abcdef0123456789abcdef")},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Index = uint64(i + 1)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(44 + 2*(8+13+32)))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkHistogramObserve(b *testing.B) {
	h := metrics.NewHistogram(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkBroadcastStack measures the full simulated broadcast pipeline:
// one causal broadcast fanned to 4 peers, delivered everywhere.
func BenchmarkBroadcastStack(b *testing.B) {
	for _, class := range []message.Class{message.ClassReliable, message.ClassCausal, message.ClassAtomic} {
		b.Run(class.String(), func(b *testing.B) {
			const n = 5
			c := sim.NewCluster(n, netsim.Fixed{Delay: time.Microsecond}, 1)
			type node struct {
				st    *broadcast.Stack
				count int
			}
			nodes := make([]*node, n)
			for i := 0; i < n; i++ {
				nd := &node{}
				nd.st = broadcast.New(c.Runtime(message.SiteID(i)), broadcast.Config{
					Deliver: func(broadcast.Delivery) { nd.count++ },
				})
				nodes[i] = nd
				c.Bind(message.SiteID(i), nodeAdapter{nd.st})
			}
			c.Start()
			payload := &message.CausalNull{From: 0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Schedule(0, func() { nodes[0].st.Broadcast(class, payload) })
				if _, err := c.RunUntilIdle(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if nodes[1].count < b.N {
				b.Fatalf("deliveries %d < %d", nodes[1].count, b.N)
			}
		})
	}
}

type nodeAdapter struct{ st *broadcast.Stack }

func (a nodeAdapter) Start() {}
func (a nodeAdapter) Receive(from message.SiteID, m message.Message) {
	a.st.Handle(from, m)
}

// BenchmarkE9Batching regenerates the deferred-write batching ablation.
func BenchmarkE9Batching(b *testing.B) {
	runExperiment(b, experiments.E9Batching,
		"reliable/stream/msgs_per_commit",
		"reliable/batch/msgs_per_commit",
		"causal/stream/msgs_per_commit",
		"causal/batch/msgs_per_commit",
	)
}

// BenchmarkE10Quorum regenerates the quorum-vs-broadcast comparison.
func BenchmarkE10Quorum(b *testing.B) {
	runExperiment(b, experiments.E10Quorum,
		"quorum/msgs_per_commit",
		"causal/msgs_per_commit",
		"quorum/ro_latency_us",
		"quorum/detectorless_post_crash",
		"reliable/detectorless_unfinished",
	)
}

// BenchmarkE11SlowSite regenerates the straggler-gating comparison.
func BenchmarkE11SlowSite(b *testing.B) {
	runExperiment(b, experiments.E11SlowSite,
		"reliable/slow_site_latency_ratio",
		"causal/slow_site_latency_ratio",
		"atomic/slow_site_latency_ratio",
	)
}

// BenchmarkE12SnapshotReads regenerates the read-only read-path ablation.
func BenchmarkE12SnapshotReads(b *testing.B) {
	runExperiment(b, experiments.E12SnapshotReads,
		"reliable/locking/ro_p99_us",
		"reliable/snapshot/ro_p99_us",
		"causal/locking/ro_p99_us",
		"causal/snapshot/ro_p99_us",
	)
}
