package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example shows the minimal write-then-read flow on a simulated cluster.
func Example() {
	cluster, err := repro.New(repro.Options{
		Sites:    3,
		Protocol: repro.Atomic,
		Verify:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Submit(0, repro.NewTxn().Write("greeting", []byte("hello")))
	if err != nil {
		log.Fatal(err)
	}
	read, err := cluster.Submit(2, repro.ReadOnlyTxn().Read("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Committed, string(read.Values["greeting"]), cluster.Check() == nil)
	// Output: true hello true
}

// ExampleCluster_SubmitConcurrent provokes a write-write conflict: under
// protocol A exactly one of two racing writers certifies.
func ExampleCluster_SubmitConcurrent() {
	cluster, err := repro.New(repro.Options{Sites: 3, Protocol: repro.Atomic})
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.SubmitConcurrent([]repro.Submission{
		{Site: 0, Txn: repro.NewTxn().Read("x").Write("x", []byte("a"))},
		{Site: 1, Txn: repro.NewTxn().Read("x").Write("x", []byte("b"))},
	})
	if err != nil {
		log.Fatal(err)
	}
	committed := 0
	for _, r := range results {
		if r.Committed {
			committed++
		}
	}
	fmt.Println(committed)
	// Output: 1
}

// ExampleOptions_membership demonstrates continued availability after a
// crash when majority views are enabled.
func ExampleOptions_membership() {
	cluster, err := repro.New(repro.Options{
		Sites:      5,
		Protocol:   repro.Atomic,
		Membership: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Crash(4)
	res, err := cluster.Submit(0, repro.NewTxn().Write("k", []byte("survives")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Committed)
	// Output: true
}
