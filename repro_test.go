package repro

import (
	"errors"
	"testing"
	"time"
)

func TestFacadeBasicFlow(t *testing.T) {
	for _, proto := range []Protocol{Reliable, Causal, Atomic, Baseline} {
		t.Run(string(proto), func(t *testing.T) {
			c, err := New(Options{Protocol: proto, Sites: 3, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Submit(0, NewTxn().Write("greeting", []byte("hello")))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed {
				t.Fatalf("write txn aborted: %s", res.Reason)
			}
			read, err := c.Submit(2, ReadOnlyTxn().Read("greeting"))
			if err != nil {
				t.Fatal(err)
			}
			if string(read.Values["greeting"]) != "hello" {
				t.Fatalf("read %q", read.Values["greeting"])
			}
			if v, ok := c.Get(1, "greeting"); !ok || string(v) != "hello" {
				t.Fatalf("Get: %q ok=%v", v, ok)
			}
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			st := c.SiteStats(0)
			if st.Committed != 1 {
				t.Fatalf("site stats: %+v", st)
			}
			if c.Network().Messages == 0 && proto != Baseline {
				t.Fatal("no network traffic recorded")
			}
		})
	}
}

func TestFacadeConflict(t *testing.T) {
	c, err := New(Options{Protocol: Atomic, Sites: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.SubmitConcurrent([]Submission{
		{Site: 0, Txn: NewTxn().Read("x").Write("x", []byte("a"))},
		{Site: 1, Txn: NewTxn().Read("x").Write("x", []byte("b"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for _, r := range results {
		if r.Committed {
			committed++
		} else if r.Reason != "certification" {
			t.Fatalf("unexpected abort reason %q", r.Reason)
		}
	}
	if committed != 1 {
		t.Fatalf("committed %d, want exactly 1", committed)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCausalStallTimesOut(t *testing.T) {
	c, err := New(Options{Protocol: Causal, Sites: 3, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(0, NewTxn().Write("x", []byte("v")))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected stall timeout, got %v", err)
	}
}

func TestFacadeCrashFailover(t *testing.T) {
	c, err := New(Options{Protocol: Atomic, Sites: 5, Membership: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(0, NewTxn().Write("pre", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	c.Crash(4)
	if err := c.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(1, NewTxn().Write("post", []byte("2")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("post-crash txn aborted: %s", res.Reason)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := New(Options{Protocol: "bogus"}); err == nil {
		t.Fatal("expected protocol error")
	}
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Sites() != 3 {
		t.Fatalf("default sites = %d", c.Sites())
	}
	if _, err := c.SubmitConcurrent([]Submission{{Site: 99, Txn: NewTxn()}}); err == nil {
		t.Fatal("expected site range error")
	}
	if err := c.Check(); err == nil {
		t.Fatal("Check without Verify should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Write on read-only should panic")
		}
	}()
	ReadOnlyTxn().Write("x", nil)
}

func TestFacadeQuorum(t *testing.T) {
	c, err := New(Options{Protocol: Quorum, Sites: 5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := c.Submit(0, NewTxn().Write("k", []byte("q"))); err != nil || !res.Committed {
		t.Fatalf("write: %+v %v", res, err)
	}
	// Quorum reads go through transactions; Get may legitimately see a
	// stale minority replica, so assert via a read-only transaction.
	read, err := c.Submit(3, ReadOnlyTxn().Read("k"))
	if err != nil || !read.Committed {
		t.Fatalf("read: %+v %v", read, err)
	}
	if string(read.Values["k"]) != "q" {
		t.Fatalf("quorum read %q", read.Values["k"])
	}
	// Minority crash tolerated with zero detection machinery.
	c.Crash(4)
	c.Crash(3)
	if res, err := c.Submit(0, NewTxn().Write("k2", []byte("post"))); err != nil || !res.Committed {
		t.Fatalf("post-crash write: %+v %v", res, err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConfigPassthrough(t *testing.T) {
	// Batch + snapshot options plumb through to working clusters.
	c, err := New(Options{Protocol: Reliable, Sites: 3, BatchWrites: true, SnapshotReadOnly: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := c.Submit(0, NewTxn().Write("a", []byte("1")).Write("b", []byte("2"))); err != nil || !res.Committed {
		t.Fatalf("batched write: %+v %v", res, err)
	}
	read, err := c.Submit(1, ReadOnlyTxn().Read("a").Read("b"))
	if err != nil || !read.Committed {
		t.Fatalf("snapshot read: %+v %v", read, err)
	}
	if string(read.Values["a"]) != "1" || string(read.Values["b"]) != "2" {
		t.Fatalf("values %v", read.Values)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitWithRetry(t *testing.T) {
	c, err := New(Options{Protocol: Atomic, Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Provoke a first-attempt certification abort: a racing pair, then
	// retry the loser.
	results, err := c.SubmitConcurrent([]Submission{
		{Site: 0, Txn: NewTxn().Read("x").Write("x", []byte("a"))},
		{Site: 1, Txn: NewTxn().Read("x").Write("x", []byte("b"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	loser := -1
	for i, r := range results {
		if !r.Committed {
			loser = i
		}
	}
	if loser == -1 {
		t.Fatal("expected one certification abort")
	}
	res, attempts, err := c.SubmitWithRetry(loser, NewTxn().Read("x").Write("x", []byte("retry")), 3)
	if err != nil || !res.Committed {
		t.Fatalf("retry failed: %+v %v", res, err)
	}
	if attempts > 3 {
		t.Fatalf("attempts = %d", attempts)
	}
	// Non-transient reasons do not retry.
	c2, _ := New(Options{Protocol: Causal, Sites: 3, Heartbeat: -1})
	if _, _, err := c2.SubmitWithRetry(0, NewTxn().Write("y", []byte("v")), 2); err == nil {
		t.Fatal("stalled submit should surface the timeout, not retry forever")
	}
}
