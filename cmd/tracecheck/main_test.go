package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/message"
	"repro/internal/netsim"
	"repro/internal/sgraph"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shardedDump runs a 2-group sharded cluster with single- and cross-shard
// commits and returns the concatenated JSONL trace dump.
func shardedDump(t *testing.T) []byte {
	t.Helper()
	const n = 4
	link := netsim.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond}
	c := sim.NewCluster(n, link, 23)
	cfg := core.Config{
		Shard:    &shard.Config{Groups: 2, RF: 2},
		Recorder: sgraph.NewRecorder(),
	}
	engines := make([]*core.ShardedEngine, n)
	tracers := make([]*trace.Tracer, n)
	for i := 0; i < n; i++ {
		rt := c.Runtime(message.SiteID(i))
		siteCfg := cfg
		tracers[i] = trace.New(message.SiteID(i), 1<<14, rt.Now)
		siteCfg.Tracer = tracers[i]
		e, err := core.NewSharded(rt, siteCfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
		c.Bind(message.SiteID(i), e)
	}
	c.Start()

	ring := engines[0].Ring()
	keyIn := func(g message.GroupID, tag string) message.Key {
		for i := 0; i < 10000; i++ {
			k := message.Key(fmt.Sprintf("%s%d", tag, i))
			if ring.GroupOf(k) == g {
				return k
			}
		}
		t.Fatalf("no key in group %v", g)
		return ""
	}
	a, b := keyIn(0, "a"), keyIn(1, "b")

	commit := func(at time.Duration, site int, writes []message.KV) {
		c.Schedule(at, func() {
			e := engines[site]
			tx := e.Begin(false)
			for _, w := range writes {
				if err := e.Write(tx, w.Key, w.Value); err != nil {
					t.Errorf("write: %v", err)
				}
			}
			e.Commit(tx, func(core.Outcome, core.AbortReason) {})
		})
	}
	// Single-shard traffic in both groups, then one cross-shard commit.
	commit(10*time.Millisecond, 0, []message.KV{{Key: a, Value: message.Value("v1")}})
	commit(20*time.Millisecond, 2, []message.KV{{Key: b, Value: message.Value("v1")}})
	commit(200*time.Millisecond, 0, []message.KV{
		{Key: a, Value: message.Value("x")},
		{Key: b, Value: message.Value("x")},
	})
	commit(400*time.Millisecond, 1, []message.KV{{Key: a, Value: message.Value("v2")}})
	if _, err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	for i, tr := range tracers {
		meta := trace.Meta{Site: int32(i), Proto: "sharded", Sites: n, AtomicMode: "sequencer", Groups: 2}
		if err := trace.WriteJSONL(&buf, meta, tr.Spans()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func runOn(t *testing.T, dump []byte) bool {
	t.Helper()
	f := filepath.Join(t.TempDir(), "dump.jsonl")
	if err := os.WriteFile(f, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	ok, err := run([]string{f})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ok
}

func TestShardedCleanTracePasses(t *testing.T) {
	dump := shardedDump(t)
	if !strings.Contains(string(dump), `"kind":"shard-coord"`) {
		t.Fatal("dump has no cross-shard coordination span")
	}
	if !runOn(t, dump) {
		t.Fatal("clean sharded trace rejected")
	}
}

// corruptLines rewrites each JSONL line through fn; fn returns the
// replacement line or "" to drop it.
func corruptLines(t *testing.T, dump []byte, fn func(line map[string]any) bool) []byte {
	t.Helper()
	var out []string
	changed := 0
	for _, line := range strings.Split(strings.TrimSpace(string(dump)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if fn(m) {
			changed++
			if m["__drop"] == true {
				continue
			}
			b, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			line = string(b)
		}
		out = append(out, line)
	}
	if changed == 0 {
		t.Fatal("corruption matched no lines")
	}
	return []byte(strings.Join(out, "\n") + "\n")
}

// TestShardedAtomicityViolationRejected flips ONE site's group-1 decision
// of the cross-shard transaction to abort: that group's replicas now
// disagree, and the commit no longer covers the touched mask.
func TestShardedAtomicityViolationRejected(t *testing.T) {
	dump := shardedDump(t)
	flipped := false
	bad := corruptLines(t, dump, func(m map[string]any) bool {
		if flipped || m["kind"] != "shard-decide" || m["peer"] != float64(1) || m["extra"] != float64(1) {
			return false
		}
		m["extra"] = float64(0)
		flipped = true
		return true
	})
	if runOn(t, bad) {
		t.Fatal("trace with a flipped cross-shard decision accepted")
	}
}

// TestShardedMissingGroupDecisionRejected drops group 1's commit
// decisions of the cross-shard transaction entirely: the transaction then
// committed in group 0 but never decided in group 1.
func TestShardedMissingGroupDecisionRejected(t *testing.T) {
	dump := shardedDump(t)
	bad := corruptLines(t, dump, func(m map[string]any) bool {
		if m["kind"] != "shard-decide" || m["peer"] != float64(1) {
			return false
		}
		m["__drop"] = true
		return true
	})
	if runOn(t, bad) {
		t.Fatal("trace missing one group's decisions accepted")
	}
}

// TestShardedOrderDivergenceRejected swaps one site's first two group-0
// certification events, breaking the identical per-group order.
func TestShardedOrderDivergenceRejected(t *testing.T) {
	dump := shardedDump(t)
	lines := strings.Split(strings.TrimSpace(string(dump)), "\n")
	var idxs []int
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if m["kind"] == "shard-cert" && m["peer"] == float64(0) && m["site"] == float64(0) {
			idxs = append(idxs, i)
			if len(idxs) == 2 {
				break
			}
		}
	}
	if len(idxs) < 2 {
		t.Fatal("fewer than two group-0 certifications at site 0")
	}
	lines[idxs[0]], lines[idxs[1]] = lines[idxs[1]], lines[idxs[0]]
	bad := []byte(strings.Join(lines, "\n") + "\n")
	if runOn(t, bad) {
		t.Fatal("trace with diverging per-group order accepted")
	}
}
