// Command tracecheck is the offline invariant checker for span streams
// produced by internal/trace (simtrace -export, the replicadb TRACE
// command, or harness runs). It re-derives the protocols' correctness and
// cost claims from the recorded spans alone:
//
//   - protocol A: every site certifies the identical total order of commit
//     requests with the identical verdicts;
//   - protocol C: deliveries respect causal precedence (everything the
//     origin had delivered before sending precedes the send everywhere)
//     and per-origin FIFO order;
//   - all protocols: no transaction is both committed and aborted, and no
//     aborted transaction's writes were applied anywhere;
//   - round counts match the paper's analytical predictions: n acks per
//     write operation and n votes per commit under R, no explicit
//     acknowledgements at all under C (one implicit-ack wait per commit),
//     and no acknowledgements or votes of any kind under A, where
//     certification replaces the vote exchange.
//
// It also reports per-kind span-duration percentiles, the observable the
// paper's latency analysis is built on.
//
//	simtrace -proto causal -sites 3 -txns 25 -seed 7 -export - | tracecheck
//	tracecheck dump-site0.jsonl dump-site1.jsonl
//
// Exit status 1 when any invariant is violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracecheck [file.jsonl ...]   (reads stdin when no files given)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	ok, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(files []string) (bool, error) {
	var dumps []trace.Dump
	if len(files) == 0 {
		d, err := trace.ReadJSONL(os.Stdin)
		if err != nil {
			return false, err
		}
		dumps = d
	}
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			return false, err
		}
		d, err := trace.ReadJSONL(r)
		r.Close()
		if err != nil {
			return false, fmt.Errorf("%s: %v", f, err)
		}
		dumps = append(dumps, d...)
	}
	if len(dumps) == 0 {
		return false, fmt.Errorf("no dumps in input")
	}
	c := newChecker(dumps)
	if err := c.validate(); err != nil {
		return false, err
	}
	c.checkContradictions()
	if c.dropped > 0 {
		fmt.Printf("warning: %d spans dropped by ring overflow; skipping order and round-count checks (raise the trace capacity)\n", c.dropped)
	} else if c.groups > 1 {
		// Partial replication: certification indices and participation are
		// per replication group, so the full-cluster order and round checks
		// do not apply; their per-group counterparts do.
		c.checkShardOrder()
		c.checkShardAtomicity()
		c.checkShardTermination()
	} else {
		switch c.proto {
		case "atomic":
			c.checkAtomicOrder()
			c.checkAtomicRounds()
		case "causal":
			c.checkCausalPrecedence()
			c.checkCausalRounds()
		case "reliable":
			c.checkReliableRounds()
		}
	}
	c.report()
	return len(c.violations) == 0, nil
}

// checker accumulates the parsed dumps and found violations.
type checker struct {
	dumps      []trace.Dump
	proto      string
	mode       string
	sites      int
	groups     int
	dropped    uint64
	violations []string

	// byTrace indexes every span by transaction, preserving per-site
	// emission order within each slice.
	byTrace map[message.TxnID][]trace.Span
}

func newChecker(dumps []trace.Dump) *checker {
	c := &checker{dumps: dumps, byTrace: make(map[message.TxnID][]trace.Span)}
	for _, d := range dumps {
		if c.proto == "" {
			c.proto = d.Meta.Proto
		}
		if c.mode == "" {
			c.mode = d.Meta.AtomicMode
		}
		if d.Meta.Sites > c.sites {
			c.sites = d.Meta.Sites
		}
		if d.Meta.Groups > c.groups {
			c.groups = d.Meta.Groups
		}
		c.dropped += d.Meta.Dropped
		for _, s := range d.Spans {
			c.byTrace[s.Trace] = append(c.byTrace[s.Trace], s)
		}
	}
	if c.sites == 0 {
		c.sites = len(dumps)
	}
	return c
}

func (c *checker) validate() error {
	for _, d := range c.dumps {
		if d.Meta.Proto != "" && d.Meta.Proto != c.proto {
			return fmt.Errorf("mixed protocols in input (%q and %q); check one protocol per run", c.proto, d.Meta.Proto)
		}
	}
	return nil
}

func (c *checker) failf(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// count returns how many spans of kind k the trace has at site (or at any
// site when site is trace.NoPeer).
func count(spans []trace.Span, k trace.Kind, site message.SiteID) int {
	n := 0
	for _, s := range spans {
		if s.Kind == k && (site == trace.NoPeer || s.Site == site) {
			n++
		}
	}
	return n
}

// sortedTraces returns the trace IDs in deterministic order.
func (c *checker) sortedTraces() []message.TxnID {
	out := make([]message.TxnID, 0, len(c.byTrace))
	for id := range c.byTrace {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// committedUpdates returns traces with a committed outcome and at least one
// write-send span — the update transactions the round-count predictions
// cover (read-only commits exchange no messages).
func (c *checker) committedUpdates() []message.TxnID {
	var out []message.TxnID
	for _, id := range c.sortedTraces() {
		spans := c.byTrace[id]
		committed := false
		for _, s := range spans {
			if s.Kind == trace.KindOutcome && s.Extra == 1 {
				committed = true
			}
		}
		if committed && count(spans, trace.KindWriteSend, trace.NoPeer) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// checkContradictions verifies that no transaction carries both a committed
// and an aborted outcome, and that no aborted transaction's writes reached
// any site's store. Safe even under ring overflow: dropped spans can hide a
// violation but never fabricate one.
func (c *checker) checkContradictions() {
	for _, id := range c.sortedTraces() {
		spans := c.byTrace[id]
		var committed, aborted bool
		for _, s := range spans {
			if s.Kind != trace.KindOutcome {
				continue
			}
			if s.Extra == 1 {
				committed = true
			} else {
				aborted = true
			}
		}
		if committed && aborted {
			c.failf("%v: both committed and aborted outcomes recorded", id)
		}
		if aborted && !committed {
			if n := count(spans, trace.KindApply, trace.NoPeer); n > 0 {
				c.failf("%v: aborted but applied at %d site(s)", id, n)
			}
		}
	}
}

// checkAtomicOrder verifies protocol A's headline property: every site
// processes the identical total order of commit requests and reaches the
// identical certification verdicts.
func (c *checker) checkAtomicOrder() {
	type certEvent struct {
		idx     uint64
		id      message.TxnID
		verdict int64
	}
	var ref []certEvent
	var refSite int32
	for i, d := range c.dumps {
		var seq []certEvent
		for _, s := range d.Spans {
			if s.Kind == trace.KindCert {
				seq = append(seq, certEvent{s.Seq, s.Trace, s.Extra})
			}
		}
		if i == 0 {
			ref, refSite = seq, d.Meta.Site
			continue
		}
		if len(seq) != len(ref) {
			c.failf("site %d certified %d requests, site %d certified %d", d.Meta.Site, len(seq), refSite, len(ref))
			continue
		}
		for j := range seq {
			if seq[j] != ref[j] {
				c.failf("commit order diverges at position %d: site %d saw %v@%d(ok=%d), site %d saw %v@%d(ok=%d)",
					j, d.Meta.Site, seq[j].id, seq[j].idx, seq[j].verdict, refSite, ref[j].id, ref[j].idx, ref[j].verdict)
				break
			}
		}
	}
}

// pairKey identifies one broadcast (origin site, origin sequence).
type pairKey struct {
	origin message.SiteID
	seq    uint64
}

// checkCausalPrecedence verifies protocol C's delivery order: everything
// the origin site had delivered before broadcasting a message must be
// delivered before that message at every site, and per-origin delivery is
// FIFO. Both are derived purely from per-site span emission order.
func (c *checker) checkCausalPrecedence() {
	// deliverPos[site][msg] = emission-order position of msg's delivery.
	deliverPos := make(map[message.SiteID]map[pairKey]int, len(c.dumps))
	for _, d := range c.dumps {
		site := message.SiteID(d.Meta.Site)
		pos := make(map[pairKey]int)
		lastSeq := make(map[message.SiteID]uint64)
		for i, s := range d.Spans {
			if s.Kind != trace.KindBcastDeliver {
				continue
			}
			m := pairKey{s.Peer, s.Seq}
			if _, dup := pos[m]; dup {
				c.failf("site %d delivered broadcast (%d,%d) twice", site, m.origin, m.seq)
				continue
			}
			pos[m] = i
			if s.Seq <= lastSeq[s.Peer] {
				c.failf("site %d violates FIFO from origin %d: seq %d delivered after %d", site, s.Peer, s.Seq, lastSeq[s.Peer])
			}
			lastSeq[s.Peer] = s.Seq
		}
		deliverPos[site] = pos
	}
	// For every broadcast, its causal predecessors are the messages its
	// origin had delivered before the send.
	for _, d := range c.dumps {
		origin := message.SiteID(d.Meta.Site)
		var deliveredSoFar []pairKey
		for _, s := range d.Spans {
			if s.Kind == trace.KindBcastDeliver {
				deliveredSoFar = append(deliveredSoFar, pairKey{s.Peer, s.Seq})
				continue
			}
			if s.Kind != trace.KindBcastSend || s.Site != origin {
				continue
			}
			msg := pairKey{origin, s.Seq}
			for site, pos := range deliverPos {
				if site == origin {
					continue
				}
				tpos, delivered := pos[msg]
				if !delivered {
					c.failf("broadcast (%d,%d) [%v] never delivered at site %d", msg.origin, msg.seq, s.Trace, site)
					continue
				}
				for _, pred := range deliveredSoFar {
					ppos, ok := pos[pred]
					if !ok {
						c.failf("site %d delivered (%d,%d) without its causal predecessor (%d,%d)",
							site, msg.origin, msg.seq, pred.origin, pred.seq)
						continue
					}
					if ppos > tpos {
						c.failf("site %d delivered (%d,%d) before its causal predecessor (%d,%d)",
							site, msg.origin, msg.seq, pred.origin, pred.seq)
					}
				}
			}
		}
	}
}

// checkReliableRounds verifies protocol R's analytical message counts: each
// write operation gathers an acknowledgement from all n sites at the home
// site, and commitment gathers one vote per site.
func (c *checker) checkReliableRounds() {
	n := c.sites
	for _, id := range c.committedUpdates() {
		spans := c.byTrace[id]
		home := id.Site
		ops := count(spans, trace.KindWriteSend, home)
		acks := count(spans, trace.KindAck, home)
		if acks != ops*n {
			c.failf("%v: %d acks at home for %d write ops over %d sites (want %d)", id, acks, ops, n, ops*n)
		}
		if votes := count(spans, trace.KindVote, home); votes != n {
			c.failf("%v: %d votes at home (want %d, one per site)", id, votes, n)
		}
		if waits := count(spans, trace.KindAckWait, home); waits != ops {
			c.failf("%v: %d ack-wait rounds at home for %d write ops", id, waits, ops)
		}
	}
}

// checkCausalRounds verifies protocol C's headline property: commitment
// uses no explicit acknowledgements or votes at all — one implicit-ack wait
// per committed update transaction, closed by mining vector clocks.
func (c *checker) checkCausalRounds() {
	for _, d := range c.dumps {
		if n := count(d.Spans, trace.KindAck, trace.NoPeer); n > 0 {
			c.failf("site %d recorded %d explicit acks under protocol C", d.Meta.Site, n)
		}
		if n := count(d.Spans, trace.KindVote, trace.NoPeer); n > 0 {
			c.failf("site %d recorded %d votes under protocol C", d.Meta.Site, n)
		}
	}
	for _, id := range c.committedUpdates() {
		if waits := count(c.byTrace[id], trace.KindAckWait, id.Site); waits != 1 {
			c.failf("%v: %d implicit-ack waits at home (want exactly 1)", id, waits)
		}
	}
}

// checkAtomicRounds verifies protocol A exchanges no acknowledgements or
// votes, certifies every committed update at all n sites with agreeing
// verdicts, and runs the expected ordering rounds (one sequencer ordering,
// or n proposals and n finals under ISIS).
func (c *checker) checkAtomicRounds() {
	n := c.sites
	for _, d := range c.dumps {
		for _, k := range []trace.Kind{trace.KindAck, trace.KindVote, trace.KindNack} {
			if cnt := count(d.Spans, k, trace.NoPeer); cnt > 0 {
				c.failf("site %d recorded %d %v spans under protocol A", d.Meta.Site, cnt, k)
			}
		}
	}
	for _, id := range c.sortedTraces() {
		spans := c.byTrace[id]
		certs := count(spans, trace.KindCert, trace.NoPeer)
		if certs == 0 {
			continue // read-only or unfinished: never reached certification
		}
		if certs != n {
			c.failf("%v: certified at %d of %d sites", id, certs, n)
		}
		verdict := int64(-1)
		for _, s := range spans {
			if s.Kind != trace.KindCert {
				continue
			}
			if verdict == -1 {
				verdict = s.Extra
			} else if s.Extra != verdict {
				c.failf("%v: certification verdicts disagree across sites", id)
				break
			}
		}
		if verdict == 1 {
			if applies := count(spans, trace.KindApply, trace.NoPeer); applies != n {
				c.failf("%v: applied at %d of %d sites", id, applies, n)
			}
		}
		switch c.mode {
		case "isis":
			if p := count(spans, trace.KindIsisPropose, trace.NoPeer); p != n {
				c.failf("%v: %d ISIS proposals (want %d, one per site)", id, p, n)
			}
			if f := count(spans, trace.KindIsisFinal, trace.NoPeer); f != n {
				c.failf("%v: %d ISIS finals (want %d, one per site)", id, f, n)
			}
		case "sequencer":
			if o := count(spans, trace.KindSeqOrder, trace.NoPeer); o < 1 {
				c.failf("%v: no sequencer ordering recorded", id)
			}
		case "batch":
			if o := count(spans, trace.KindBatchOrder, trace.NoPeer); o < 1 {
				c.failf("%v: no batch ordering recorded", id)
			}
		}
	}
}

// shardEvent is one per-group ordered event: a certification or a
// cross-shard decision at a group-local total-order index.
type shardEvent struct {
	kind    trace.Kind
	idx     uint64
	id      message.TxnID
	verdict int64
}

// checkShardOrder verifies partial replication's per-group counterpart of
// protocol A's headline property: within each replication group, every
// participating site processes the same group-local total order of
// certifications and decisions with identical verdicts. Sites outside a
// group record no spans for it and are naturally excluded.
//
// Dumps are finite windows (ring buffers wrap, operators snapshot sites
// at different instants, a rejoining site certifies backlogged entries
// long after its peers did), so sites legitimately capture different
// slices of the group history. The invariant checked is therefore the
// same one walcheck applies to per-group WALs: every site's sequence
// must be a contiguous window of the longest site's sequence. Lagging
// or resynced sites truncate the history at either end — they never
// reorder it, skip inside it, or disagree on a verdict.
func (c *checker) checkShardOrder() {
	// perGroup[group][site] = that site's event sequence, emission order.
	perGroup := make(map[int32]map[int32][]shardEvent)
	for _, d := range c.dumps {
		for _, s := range d.Spans {
			if s.Kind != trace.KindShardCert && s.Kind != trace.KindShardDecide {
				continue
			}
			g := int32(s.Peer)
			m := perGroup[g]
			if m == nil {
				m = make(map[int32][]shardEvent)
				perGroup[g] = m
			}
			m[d.Meta.Site] = append(m[d.Meta.Site], shardEvent{s.Kind, s.Seq, s.Trace, s.Extra})
		}
	}
	groups := make([]int32, 0, len(perGroup))
	for g := range perGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		bySite := perGroup[g]
		sites := make([]int32, 0, len(bySite))
		for s := range bySite {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		// Reference = the site that captured the most of the group's
		// history (ties broken by lowest site id, deterministically).
		ref, refSite := bySite[sites[0]], sites[0]
		for _, s := range sites[1:] {
			if len(bySite[s]) > len(ref) {
				ref, refSite = bySite[s], s
			}
		}
		for _, s := range sites {
			if s == refSite {
				continue
			}
			seq := bySite[s]
			if !isWindowOf(ref, seq) {
				c.failf("group %d: site %d's %d ordered events are not a contiguous window of site %d's %d — the group order diverges",
					g, s, len(seq), refSite, len(ref))
			}
		}
	}
}

// isWindowOf reports whether seq appears as a contiguous run inside ref.
// An empty seq is a window of anything (the site's capture simply missed
// this group's traffic). Sequences are dump-sized, so the quadratic scan
// is fine.
func isWindowOf(ref, seq []shardEvent) bool {
	if len(seq) == 0 {
		return true
	}
	for start := 0; start+len(seq) <= len(ref); start++ {
		match := true
		for j := range seq {
			if ref[start+j] != seq[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// checkShardAtomicity verifies the cross-shard commit invariant: a
// transaction that opened a vote-collection round (a shard-coord span,
// whose Seq is the touched-group bitmask) either commits in EVERY touched
// group or in none — no group may decide commit while another decides
// abort, and a commit may not skip a touched group.
func (c *checker) checkShardAtomicity() {
	for _, id := range c.sortedTraces() {
		spans := c.byTrace[id]
		var mask uint64
		hasCoord := false
		for _, s := range spans {
			if s.Kind == trace.KindShardCoord {
				hasCoord = true
				mask = s.Seq
			}
		}
		if !hasCoord {
			continue
		}
		// One verdict per group; replicas of a group must agree.
		decided := make(map[int32]int64)
		for _, s := range spans {
			if s.Kind != trace.KindShardDecide {
				continue
			}
			g := int32(s.Peer)
			if v, ok := decided[g]; ok && v != s.Extra {
				c.failf("%v: group %d replicas disagree on the decision (%d vs %d)", id, g, v, s.Extra)
			}
			decided[g] = s.Extra
		}
		var commits, aborts []int32
		for g, v := range decided {
			if v == 1 {
				commits = append(commits, g)
			} else {
				aborts = append(aborts, g)
			}
		}
		sort.Slice(commits, func(i, j int) bool { return commits[i] < commits[j] })
		sort.Slice(aborts, func(i, j int) bool { return aborts[i] < aborts[j] })
		if len(commits) > 0 && len(aborts) > 0 {
			c.failf("%v: atomicity violated — committed in group(s) %v but aborted in group(s) %v", id, commits, aborts)
		}
		if len(commits) > 0 {
			for g := int32(0); g < 64; g++ {
				if mask&(1<<uint(g)) == 0 {
					continue
				}
				if v, ok := decided[g]; !ok || v != 1 {
					c.failf("%v: atomicity violated — touched group %d has no commit decision (mask %#x)", id, g, mask)
				}
			}
			for _, g := range commits {
				if g >= 64 || mask&(1<<uint(g)) == 0 {
					c.failf("%v: commit decision in group %d outside the touched mask %#x", id, g, mask)
				}
			}
		}
	}
}

// checkShardTermination verifies that no cross-shard prepare is left
// stranded: once any group certified a transaction (a shard-cert span
// exists), every group in the coordinator's touched mask must eventually
// record a decision — reached by the coordinator or, after its failure, by
// a successor's termination round. A txn with certs but a decision-less
// touched group is a stuck prepare: its footprint keys stay blocked
// forever. Runs on full-execution dumps (after the drain window); a trace
// cut mid-round would report false positives.
func (c *checker) checkShardTermination() {
	for _, id := range c.sortedTraces() {
		spans := c.byTrace[id]
		var mask uint64
		hasCoord, hasCert := false, false
		decided := make(map[int32]bool)
		for _, s := range spans {
			switch s.Kind {
			case trace.KindShardCoord:
				hasCoord = true
				mask = s.Seq
			case trace.KindShardCert:
				hasCert = true
			case trace.KindShardDecide:
				decided[int32(s.Peer)] = true
			}
		}
		if !hasCoord || !hasCert {
			continue
		}
		for g := int32(0); g < 64; g++ {
			if mask&(1<<uint(g)) == 0 {
				continue
			}
			if !decided[g] {
				c.failf("%v: stuck prepare — certified but touched group %d never recorded a decision (mask %#x)", id, g, mask)
			}
		}
	}
}

// report prints the per-kind duration percentiles, the measured round
// counts, and the verdict.
func (c *checker) report() {
	totalSpans := 0
	hists := make(map[trace.Kind]*metrics.Histogram)
	for _, d := range c.dumps {
		totalSpans += len(d.Spans)
		for _, s := range d.Spans {
			h := hists[s.Kind]
			if h == nil {
				h = metrics.NewHistogram(0)
				hists[s.Kind] = h
			}
			h.Observe(s.Duration())
		}
	}
	fmt.Printf("tracecheck: proto=%s", c.proto)
	if c.mode != "" && c.proto == "atomic" {
		fmt.Printf(" mode=%s", c.mode)
	}
	if c.groups > 1 {
		fmt.Printf(" groups=%d", c.groups)
	}
	fmt.Printf(" sites=%d spans=%d traces=%d\n", c.sites, totalSpans, len(c.byTrace))

	kinds := make([]trace.Kind, 0, len(hists))
	for k := range hists {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Printf("\n%-14s %7s %12s %12s\n", "span", "count", "p50", "p99")
	for _, k := range kinds {
		snap := hists[k].Snapshot()
		fmt.Printf("%-14s %7d %12v %12v\n", k, snap.Count, snap.P50.Round(time.Microsecond), snap.P99.Round(time.Microsecond))
	}

	updates := c.committedUpdates()
	if len(updates) > 0 {
		var acks, votes, nacks, certs, proposes int
		for _, d := range c.dumps {
			acks += count(d.Spans, trace.KindAck, trace.NoPeer)
			votes += count(d.Spans, trace.KindVote, trace.NoPeer)
			nacks += count(d.Spans, trace.KindNack, trace.NoPeer)
			certs += count(d.Spans, trace.KindCert, trace.NoPeer)
			proposes += count(d.Spans, trace.KindIsisPropose, trace.NoPeer)
		}
		den := float64(len(updates))
		fmt.Printf("\nround counts over %d committed updates: %.1f acks, %.1f votes, %.1f nacks, %.1f certifications, %.1f ISIS proposals per commit\n",
			len(updates), float64(acks)/den, float64(votes)/den, float64(nacks)/den, float64(certs)/den, float64(proposes)/den)
	}

	if len(c.violations) == 0 {
		fmt.Printf("\nOK: all invariants hold (0 violations)\n")
		return
	}
	fmt.Printf("\nFAIL: %d violation(s)\n", len(c.violations))
	for _, v := range c.violations {
		fmt.Println("  -", v)
	}
}
