// Command loadgen drives a running replicadb cluster (the real TCP
// deployment) with concurrent clients over the line protocol and reports
// wall-clock throughput and latency percentiles — the live-network
// counterpart of the simulator-based benchrunner.
//
//	loadgen -addrs :8000,:8001,:8002 -clients 8 -duration 10s -write-pct 50
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type sample struct {
	latency time.Duration
	ok      bool
	aborted bool
	write   bool
}

func run() error {
	addrsFlag := flag.String("addrs", "127.0.0.1:8000", "comma-separated replicadb client addresses")
	clients := flag.Int("clients", 4, "concurrent clients per address")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	writePct := flag.Int("write-pct", 50, "percentage of requests that are writes")
	keys := flag.Int("keys", 64, "key-space size")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	var wg sync.WaitGroup
	results := make(chan sample, 4096)
	stop := time.Now().Add(*duration)

	for ai, addr := range addrs {
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(addr string, id int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(*seed + int64(id)))
				conn, err := net.Dial("tcp", strings.TrimSpace(addr))
				if err != nil {
					fmt.Fprintf(os.Stderr, "client %d: dial %s: %v\n", id, addr, err)
					return
				}
				defer conn.Close()
				rd := bufio.NewReader(conn)
				for time.Now().Before(stop) {
					key := fmt.Sprintf("k%d", r.Intn(*keys))
					var req string
					isWrite := r.Intn(100) < *writePct
					if isWrite {
						req = fmt.Sprintf("SET %s=v%d", key, r.Int())
					} else {
						req = "GET " + key
					}
					start := time.Now()
					if _, err := fmt.Fprintln(conn, req); err != nil {
						return
					}
					line, err := rd.ReadString('\n')
					if err != nil {
						return
					}
					results <- sample{
						latency: time.Since(start),
						ok:      strings.HasPrefix(line, "OK"),
						aborted: strings.HasPrefix(line, "ABORTED"),
						write:   isWrite,
					}
				}
			}(addr, ai*(*clients)+c)
		}
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var all []sample
	for s := range results {
		all = append(all, s)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed — is the cluster up?")
	}
	report(all, *duration)
	return nil
}

func report(all []sample, dur time.Duration) {
	var reads, writes, oks, aborts int
	var readLat, writeLat []time.Duration
	for _, s := range all {
		if s.ok {
			oks++
		}
		if s.aborted {
			aborts++
		}
		if s.write {
			writes++
			writeLat = append(writeLat, s.latency)
		} else {
			reads++
			readLat = append(readLat, s.latency)
		}
	}
	fmt.Printf("requests: %d (%d reads, %d writes) in %v\n", len(all), reads, writes, dur)
	fmt.Printf("throughput: %.1f req/s | ok: %d | aborted: %d\n",
		float64(len(all))/dur.Seconds(), oks, aborts)
	for name, lats := range map[string][]time.Duration{"read": readLat, "write": writeLat} {
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Printf("%-5s latency: p50=%v p95=%v p99=%v max=%v\n",
			name, q(0.50).Round(10*time.Microsecond), q(0.95).Round(10*time.Microsecond),
			q(0.99).Round(10*time.Microsecond), lats[len(lats)-1].Round(10*time.Microsecond))
	}
}
