// Command replicacli sends one command to a replicadb client port and
// prints the response.
//
//	replicacli -addr :8000 SET user:1=ada balance=100
//	replicacli -addr :8002 GET user:1 balance
//	replicacli -addr :8000 STATS
//	replicacli -addr :8000 TRACE > site0.jsonl
//
// Every command gets a single response line except TRACE, whose JSONL dump
// spans multiple lines and ends with a lone "." (stripped from the output).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicacli:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8000", "replicadb client address")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: replicacli -addr host:port COMMAND [args...]")
	}
	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(*timeout)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(conn, strings.Join(flag.Args(), " ")); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	if strings.EqualFold(flag.Arg(0), "TRACE") {
		// Multi-line response, terminated by a lone ".".
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			if strings.TrimRight(line, "\n") == "." {
				return nil
			}
			fmt.Print(line)
			if strings.HasPrefix(line, "ERR") {
				os.Exit(2)
			}
		}
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	fmt.Print(line)
	if strings.HasPrefix(line, "ERR") || strings.HasPrefix(line, "ABORTED") {
		os.Exit(2)
	}
	return nil
}
