package main

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/commitpipe"
	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/message"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/trace"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("0=127.0.0.1:7000, 2=host:7002,5=:7005")
	if err != nil {
		t.Fatal(err)
	}
	want := map[message.SiteID]string{0: "127.0.0.1:7000", 2: "host:7002", 5: ":7005"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for id, addr := range want {
		if got[id] != addr {
			t.Fatalf("peer %v = %q, want %q", id, got[id], addr)
		}
	}
	for _, bad := range []string{"", "0:missing-eq", "x=addr"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) should fail", bad)
		}
	}
}

// newTestReplica boots an in-process cluster backing the client protocol
// handler, with tracing enabled at every site and checkpointing backed by a
// per-site temp WAL directory (so STATS exposes checkpoint counters).
func newTestReplica(t *testing.T, n int) []*replica {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make(map[message.SiteID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[message.SiteID(i)] = ln.Addr().String()
	}
	replicas := make([]*replica, n)
	for i := 0; i < n; i++ {
		h, err := livenet.New(livenet.Config{ID: message.SiteID(i), Addrs: addrs, Listener: listeners[i]})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(message.SiteID(i), 1<<12, h.Now)
		h.SetTracer(tr)
		dir := t.TempDir()
		st, wal, info, err := checkpoint.Recover(dir, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewCausal(h, core.Config{
			CausalHeartbeat: 20 * time.Millisecond,
			Tracer:          tr,
			WAL:             wal,
			InitialStore:    st,
			InitialStack:    info.Stack,
			Checkpoint:      checkpoint.Policy{Dir: dir, Interval: 25 * time.Millisecond, Retain: 2},
		})
		h.Bind(e)
		replicas[i] = &replica{host: h, engine: e, tracer: tr, proto: "causal", sites: n}
	}
	for _, r := range replicas {
		if err := r.host.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.host.Close()
		}
	})
	return replicas
}

func TestClientProtocolExecute(t *testing.T) {
	rs := newTestReplica(t, 3)
	r0, r2 := rs[0], rs[2]

	if resp := r0.execute("SET a=1 b=2"); resp != "OK committed" {
		t.Fatalf("SET: %q", resp)
	}
	if resp := r0.execute("GET a b missing"); resp != "OK a=1 b=2 missing=<nil>" {
		t.Fatalf("GET: %q", resp)
	}
	resp := r0.execute("STATS")
	if !strings.HasPrefix(resp, "OK begun=") {
		t.Fatalf("STATS: %q", resp)
	}
	// Per-peer transport counters for every site (loopback included),
	// plus the checkpoint counters exposed when checkpointing is enabled.
	for _, want := range []string{
		"peer0=[", "peer1=[", "peer2=[", "connects=", "queue=", "batch=(",
		"ckpt_count=", "ckpt_index=", "ckpt_bytes=", "ckpt_age=",
		"segs_truncated=", "state_chunks=", "state_bytes=",
	} {
		if !strings.Contains(resp, want) {
			t.Fatalf("STATS %q missing token %q", resp, want)
		}
	}
	// The interval checkpointer must eventually persist the committed state:
	// poll STATS until a checkpoint at a non-zero applied index appears.
	ckptDeadline := time.Now().Add(10 * time.Second)
	for {
		s := r0.execute("STATS")
		if strings.Contains(s, "ckpt_count=") && !strings.Contains(s, "ckpt_count=0 ") &&
			!strings.Contains(s, "ckpt_index=0 ") {
			break
		}
		if time.Now().After(ckptDeadline) {
			t.Fatalf("checkpoint never taken: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Replication: the value becomes readable at another site.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := r2.execute("GET a")
		if resp == "OK a=1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote GET never converged: %q", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// TRACE dumps the span ring as JSONL terminated by a lone ".".
	dump := r0.execute("TRACE")
	if !strings.HasSuffix(dump, "\n.") {
		t.Fatalf("TRACE response not terminated by lone '.': ...%q", dump[max(0, len(dump)-40):])
	}
	dumps, err := trace.ReadJSONL(strings.NewReader(strings.TrimSuffix(dump, ".")))
	if err != nil {
		t.Fatalf("TRACE output unparseable: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Meta.Proto != "causal" || dumps[0].Meta.Sites != 3 {
		t.Fatalf("TRACE meta: %+v", dumps[0].Meta)
	}
	if len(dumps[0].Spans) == 0 {
		t.Fatal("TRACE dump has no spans")
	}
	// The committed SET's trace must include an outcome span at the home site.
	found := false
	for _, s := range dumps[0].Spans {
		if s.Kind == trace.KindOutcome && s.Extra == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("TRACE dump missing committed outcome span")
	}
	// Tracing disabled → clean error, not a panic.
	if resp := (&replica{}).execute("TRACE"); !strings.HasPrefix(resp, "ERR tracing disabled") {
		t.Fatalf("TRACE without tracer: %q", resp)
	}
	// Error paths.
	for _, bad := range []string{"", "GET", "SET", "SET noequals", "NOPE x"} {
		if resp := r0.execute(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("execute(%q) = %q, want ERR", bad, resp)
		}
	}
}

// newShardedReplicas boots a 4-site partially replicated cluster (2 groups,
// RF 2) the way run() wires it: per-group WAL directories recovered via the
// checkpoint path, a ShardedEngine per site, and the client protocol on top.
func newShardedReplicas(t *testing.T) ([]*replica, *shard.Ring) {
	t.Helper()
	const n = 4
	scfg := &shard.Config{Groups: 2, RF: 2}
	ring, err := shard.NewRing(*scfg, n)
	if err != nil {
		t.Fatal(err)
	}
	listeners := make([]net.Listener, n)
	addrs := make(map[message.SiteID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[message.SiteID(i)] = ln.Addr().String()
	}
	replicas := make([]*replica, n)
	for i := 0; i < n; i++ {
		h, err := livenet.New(livenet.Config{ID: message.SiteID(i), Addrs: addrs, Listener: listeners[i]})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(message.SiteID(i), 1<<12, h.Now)
		h.SetTracer(tr)
		base := t.TempDir()
		wals := make(map[message.GroupID]*storage.WAL)
		stores := make(map[message.GroupID]*storage.Store)
		stacks := make(map[message.GroupID]*message.StackSync)
		pols := make(map[message.GroupID]checkpoint.Policy)
		for _, g := range ring.SiteGroups(message.SiteID(i)) {
			gdir := filepath.Join(base, g.String())
			st, w, info, err := checkpoint.Recover(gdir, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			stores[g], wals[g], stacks[g] = st, w, info.Stack
			pols[g] = checkpoint.Policy{Dir: gdir, Interval: 25 * time.Millisecond, Retain: 2}
		}
		se, err := core.NewSharded(h, core.Config{
			Tracer:            tr,
			Shard:             scfg,
			GroupWAL:          func(g message.GroupID) *storage.WAL { return wals[g] },
			GroupInitialStore: func(g message.GroupID) *storage.Store { return stores[g] },
			GroupInitialStack: func(g message.GroupID) *message.StackSync { return stacks[g] },
			GroupCheckpoint:   func(g message.GroupID) checkpoint.Policy { return pols[g] },
			GroupCommit:       commitpipe.Policy{MaxBatch: 8, MaxDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Bind(se)
		replicas[i] = &replica{host: h, engine: se, sharded: se, tracer: tr, proto: "atomic", sites: n, groups: 2}
	}
	for _, r := range replicas {
		if err := r.host.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.host.Close()
		}
	})
	return replicas, ring
}

// TestShardedClientProtocol drives single-shard, forwarded, and cross-shard
// commits through the client protocol and checks the sharded STATS tokens
// and TRACE metadata.
func TestShardedClientProtocol(t *testing.T) {
	rs, ring := newShardedReplicas(t)
	keyIn := func(g message.GroupID, tag string) string {
		for i := 0; i < 10000; i++ {
			k := fmt.Sprintf("%s%d", tag, i)
			if ring.GroupOf(message.Key(k)) == g {
				return k
			}
		}
		t.Fatalf("no key in group %v", g)
		return ""
	}
	a, b := keyIn(0, "a"), keyIn(1, "b")
	// With the deterministic placement, group 0 lives at sites {0,1} and
	// group 1 at {2,3}: site 0 is a member for a, a non-member for b.
	r0, r2 := rs[0], rs[2]

	// Single-shard commit at a member, then a forwarded one from a non-member.
	if resp := r0.execute("SET " + a + "=1"); resp != "OK committed" {
		t.Fatalf("member SET: %q", resp)
	}
	if resp := r2.execute("SET " + a + "=2"); resp != "OK committed" {
		t.Fatalf("forwarded SET: %q", resp)
	}
	// Cross-shard commit touching both groups.
	if resp := r0.execute(fmt.Sprintf("SET %s=x %s=y", a, b)); resp != "OK committed" {
		t.Fatalf("cross-shard SET: %q", resp)
	}
	// Reads route by membership: a is readable at site 0, b is not.
	if resp := r0.execute("GET " + a); resp != "OK "+a+"=x" {
		t.Fatalf("local GET: %q", resp)
	}
	if resp := r0.execute("GET " + b); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("non-member GET should error: %q", resp)
	}
	// The cross-shard write converges at group 1's replicas.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := r2.execute("GET " + b)
		if resp == "OK "+b+"=y" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group-1 GET never converged: %q", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// STATS exposes per-group progress and the cross-shard leak oracle.
	resp := r0.execute("STATS")
	for _, want := range []string{"g0_keys=", "g0_idx=", "pending_coord=0", "suspects=0", "orphaned_prepares=0", "ckpt_count="} {
		if !strings.Contains(resp, want) {
			t.Fatalf("STATS %q missing token %q", resp, want)
		}
	}
	if strings.Contains(resp, "g1_keys=") {
		t.Fatalf("STATS at a group-0 site reports group 1: %q", resp)
	}
	// TRACE carries the group count and the cross-shard coordination span.
	dump := r0.execute("TRACE")
	dumps, err := trace.ReadJSONL(strings.NewReader(strings.TrimSuffix(dump, ".")))
	if err != nil {
		t.Fatalf("TRACE output unparseable: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Meta.Groups != 2 {
		t.Fatalf("TRACE meta: %+v", dumps[0].Meta)
	}
	foundCoord := false
	for _, s := range dumps[0].Spans {
		if s.Kind == trace.KindShardCoord {
			foundCoord = true
		}
	}
	if !foundCoord {
		t.Fatal("TRACE dump missing shard-coord span")
	}
}
