package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/message"
	"repro/internal/trace"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("0=127.0.0.1:7000, 2=host:7002,5=:7005")
	if err != nil {
		t.Fatal(err)
	}
	want := map[message.SiteID]string{0: "127.0.0.1:7000", 2: "host:7002", 5: ":7005"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for id, addr := range want {
		if got[id] != addr {
			t.Fatalf("peer %v = %q, want %q", id, got[id], addr)
		}
	}
	for _, bad := range []string{"", "0:missing-eq", "x=addr"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) should fail", bad)
		}
	}
}

// newTestReplica boots an in-process cluster backing the client protocol
// handler, with tracing enabled at every site and checkpointing backed by a
// per-site temp WAL directory (so STATS exposes checkpoint counters).
func newTestReplica(t *testing.T, n int) []*replica {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make(map[message.SiteID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[message.SiteID(i)] = ln.Addr().String()
	}
	replicas := make([]*replica, n)
	for i := 0; i < n; i++ {
		h, err := livenet.New(livenet.Config{ID: message.SiteID(i), Addrs: addrs, Listener: listeners[i]})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(message.SiteID(i), 1<<12, h.Now)
		h.SetTracer(tr)
		dir := t.TempDir()
		st, wal, info, err := checkpoint.Recover(dir, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewCausal(h, core.Config{
			CausalHeartbeat: 20 * time.Millisecond,
			Tracer:          tr,
			WAL:             wal,
			InitialStore:    st,
			InitialStack:    info.Stack,
			Checkpoint:      checkpoint.Policy{Dir: dir, Interval: 25 * time.Millisecond, Retain: 2},
		})
		h.Bind(e)
		replicas[i] = &replica{host: h, engine: e, tracer: tr, proto: "causal", sites: n}
	}
	for _, r := range replicas {
		if err := r.host.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.host.Close()
		}
	})
	return replicas
}

func TestClientProtocolExecute(t *testing.T) {
	rs := newTestReplica(t, 3)
	r0, r2 := rs[0], rs[2]

	if resp := r0.execute("SET a=1 b=2"); resp != "OK committed" {
		t.Fatalf("SET: %q", resp)
	}
	if resp := r0.execute("GET a b missing"); resp != "OK a=1 b=2 missing=<nil>" {
		t.Fatalf("GET: %q", resp)
	}
	resp := r0.execute("STATS")
	if !strings.HasPrefix(resp, "OK begun=") {
		t.Fatalf("STATS: %q", resp)
	}
	// Per-peer transport counters for every site (loopback included),
	// plus the checkpoint counters exposed when checkpointing is enabled.
	for _, want := range []string{
		"peer0=[", "peer1=[", "peer2=[", "connects=", "queue=", "batch=(",
		"ckpt_count=", "ckpt_index=", "ckpt_bytes=", "ckpt_age=",
		"segs_truncated=", "state_chunks=", "state_bytes=",
	} {
		if !strings.Contains(resp, want) {
			t.Fatalf("STATS %q missing token %q", resp, want)
		}
	}
	// The interval checkpointer must eventually persist the committed state:
	// poll STATS until a checkpoint at a non-zero applied index appears.
	ckptDeadline := time.Now().Add(10 * time.Second)
	for {
		s := r0.execute("STATS")
		if strings.Contains(s, "ckpt_count=") && !strings.Contains(s, "ckpt_count=0 ") &&
			!strings.Contains(s, "ckpt_index=0 ") {
			break
		}
		if time.Now().After(ckptDeadline) {
			t.Fatalf("checkpoint never taken: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Replication: the value becomes readable at another site.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := r2.execute("GET a")
		if resp == "OK a=1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote GET never converged: %q", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// TRACE dumps the span ring as JSONL terminated by a lone ".".
	dump := r0.execute("TRACE")
	if !strings.HasSuffix(dump, "\n.") {
		t.Fatalf("TRACE response not terminated by lone '.': ...%q", dump[max(0, len(dump)-40):])
	}
	dumps, err := trace.ReadJSONL(strings.NewReader(strings.TrimSuffix(dump, ".")))
	if err != nil {
		t.Fatalf("TRACE output unparseable: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Meta.Proto != "causal" || dumps[0].Meta.Sites != 3 {
		t.Fatalf("TRACE meta: %+v", dumps[0].Meta)
	}
	if len(dumps[0].Spans) == 0 {
		t.Fatal("TRACE dump has no spans")
	}
	// The committed SET's trace must include an outcome span at the home site.
	found := false
	for _, s := range dumps[0].Spans {
		if s.Kind == trace.KindOutcome && s.Extra == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("TRACE dump missing committed outcome span")
	}
	// Tracing disabled → clean error, not a panic.
	if resp := (&replica{}).execute("TRACE"); !strings.HasPrefix(resp, "ERR tracing disabled") {
		t.Fatalf("TRACE without tracer: %q", resp)
	}
	// Error paths.
	for _, bad := range []string{"", "GET", "SET", "SET noequals", "NOPE x"} {
		if resp := r0.execute(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("execute(%q) = %q, want ERR", bad, resp)
		}
	}
}
