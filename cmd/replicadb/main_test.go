package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/message"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("0=127.0.0.1:7000, 2=host:7002,5=:7005")
	if err != nil {
		t.Fatal(err)
	}
	want := map[message.SiteID]string{0: "127.0.0.1:7000", 2: "host:7002", 5: ":7005"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for id, addr := range want {
		if got[id] != addr {
			t.Fatalf("peer %v = %q, want %q", id, got[id], addr)
		}
	}
	for _, bad := range []string{"", "0:missing-eq", "x=addr"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) should fail", bad)
		}
	}
}

// newTestReplica boots an in-process single-host cluster backing the client
// protocol handler.
func newTestReplica(t *testing.T, n int) ([]*livenet.Host, []core.Engine) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make(map[message.SiteID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[message.SiteID(i)] = ln.Addr().String()
	}
	hosts := make([]*livenet.Host, n)
	engines := make([]core.Engine, n)
	for i := 0; i < n; i++ {
		h, err := livenet.New(livenet.Config{ID: message.SiteID(i), Addrs: addrs, Listener: listeners[i]})
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewCausal(h, core.Config{CausalHeartbeat: 20 * time.Millisecond})
		h.Bind(e)
		hosts[i] = h
		engines[i] = e
	}
	for _, h := range hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
	})
	return hosts, engines
}

func TestClientProtocolExecute(t *testing.T) {
	hosts, engines := newTestReplica(t, 3)

	if resp := execute(hosts[0], engines[0], "SET a=1 b=2"); resp != "OK committed" {
		t.Fatalf("SET: %q", resp)
	}
	if resp := execute(hosts[0], engines[0], "GET a b missing"); resp != "OK a=1 b=2 missing=<nil>" {
		t.Fatalf("GET: %q", resp)
	}
	resp := execute(hosts[0], engines[0], "STATS")
	if !strings.HasPrefix(resp, "OK begun=") {
		t.Fatalf("STATS: %q", resp)
	}
	// Per-peer transport counters for every site (loopback included).
	for _, want := range []string{"peer0=[", "peer1=[", "peer2=[", "connects=", "queue=", "batch=("} {
		if !strings.Contains(resp, want) {
			t.Fatalf("STATS %q missing transport token %q", resp, want)
		}
	}
	// Replication: the value becomes readable at another site.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := execute(hosts[2], engines[2], "GET a")
		if resp == "OK a=1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote GET never converged: %q", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Error paths.
	for _, bad := range []string{"", "GET", "SET", "SET noequals", "NOPE x"} {
		if resp := execute(hosts[0], engines[0], bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("execute(%q) = %q, want ERR", bad, resp)
		}
	}
}
