// Command replicadb runs one replica of the broadcast-based replicated
// database as a networked process: the chosen replication engine on top of
// the TCP runtime, an optional write-ahead log, and a line-oriented client
// port.
//
// A three-site cluster on one machine:
//
//	replicadb -id 0 -peers 0=:7000,1=:7001,2=:7002 -client :8000 -proto causal &
//	replicadb -id 1 -peers 0=:7000,1=:7001,2=:7002 -client :8001 -proto causal &
//	replicadb -id 2 -peers 0=:7000,1=:7001,2=:7002 -client :8002 -proto causal &
//	replicacli -addr :8000 SET user:1=ada
//	replicacli -addr :8002 GET user:1
//
// Client protocol (one request per line, one response line — except TRACE,
// whose response is multi-line and ends with a lone "."):
//
//	GET k1 [k2 ...]          read-only transaction
//	SET k1=v1 [k2=v2 ...]    update transaction
//	STATS                    engine counters plus per-peer transport counters
//	TRACE                    dump this site's span ring as JSONL (see docs/TRACING.md)
//
// Partial replication (-proto atomic only): -shards splits the keyspace
// into that many replication groups, each replicated by -rf sites chosen
// deterministically from the static site set. A site's -wal directory then
// holds one segmented log (plus checkpoints) per local group, g0/, g1/,
// ..., recovered independently on restart; walcheck understands the same
// layout. Reads must be issued at a site replicating the key's group —
// a GET elsewhere reports the key as not replicated. Writes route
// automatically: single-group transactions forward to the group, and
// multi-group transactions run the cross-shard certification round.
//
//	replicadb -id 0 -peers ... -proto atomic -shards 2 -rf 2 -wal wal0/
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/broadcast"
	"repro/internal/checkpoint"
	"repro/internal/commitpipe"
	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/message"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicadb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.Int("id", 0, "site id")
		peers      = flag.String("peers", "", "comma-separated id=host:port for every site")
		proto      = flag.String("proto", "causal", "replication protocol: reliable|causal|atomic|baseline|quorum")
		client     = flag.String("client", "", "client listen address (host:port)")
		walPath    = flag.String("wal", "", "write-ahead log: a directory for a segmented log, or a single file (optional)")
		walBatch   = flag.Int("wal-batch", 64, "group-commit batch size in records; <= 1 syncs every record")
		walFlush   = flag.Duration("wal-flush", 2*time.Millisecond, "group-commit max delay before a partial batch fsyncs")
		walSegMB   = flag.Int64("wal-seg-bytes", storage.DefaultSegmentBytes, "segment rotation threshold in bytes (directory logs)")
		ckptIval   = flag.Duration("checkpoint-interval", 0, "periodic checkpoint interval (0 disables the timer trigger; requires a directory -wal)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "checkpoint once this many bytes were appended to the WAL since the last one (0 disables the bytes trigger)")
		ckptRetain = flag.Int("checkpoint-retain", 3, "completed checkpoints to keep on disk")
		heartbeat  = flag.Duration("heartbeat", 25*time.Millisecond, "protocol C null-broadcast interval")
		atomicMode = flag.String("atomic-mode", "sequencer", "protocol A total-order mode: sequencer|isis|batch")
		batchWin   = flag.Duration("batch-window", time.Millisecond, "batch orderer: accumulation window before a batch seals")
		batchMsgs  = flag.Int("batch-msgs", 64, "batch orderer: message budget that seals a batch early")
		dialRetry  = flag.Duration("dial-retry", 500*time.Millisecond, "initial peer reconnect backoff (doubles with jitter)")
		sendQueue  = flag.Int("send-queue", 1024, "per-peer outgoing message buffer")
		shards     = flag.Int("shards", 1, "partial replication: number of replication groups (1 = full replication; requires -proto atomic)")
		rf         = flag.Int("rf", 0, "sites replicating each group under -shards (0 = every site)")
		member     = flag.Bool("membership", false, "enable failure detection and majority views")
		fdIval     = flag.Duration("fd-interval", 500*time.Millisecond, "sharded: failure-detector heartbeat interval; enables cross-shard coordinator failover (0 disables)")
		fdTimeout  = flag.Duration("fd-timeout", 2500*time.Millisecond, "sharded: silence before a peer is suspected and its prepares terminated")
		traceBuf   = flag.Int("trace-buf", trace.DefaultCap, "per-site span ring capacity for TRACE (0 disables tracing)")
		verbose    = flag.Bool("v", false, "log runtime diagnostics")
	)
	flag.Parse()

	addrs, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	if _, ok := addrs[message.SiteID(*id)]; !ok {
		return fmt.Errorf("own id %d missing from -peers", *id)
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "", log.Lmicroseconds)
	}
	host, err := livenet.New(livenet.Config{
		ID:        message.SiteID(*id),
		Addrs:     addrs,
		Logger:    logger,
		DialRetry: *dialRetry,
		SendQueue: *sendQueue,
	})
	if err != nil {
		return err
	}

	ecfg := core.Config{Membership: *member}
	var tr *trace.Tracer
	if *traceBuf > 0 {
		tr = trace.New(message.SiteID(*id), *traceBuf, host.Now)
		ecfg.Tracer = tr
		host.SetTracer(tr)
	}
	var ring *shard.Ring
	if *shards > 1 {
		if *proto != "atomic" {
			return fmt.Errorf("-shards requires -proto atomic (got %q)", *proto)
		}
		if *member {
			return fmt.Errorf("-shards does not combine with -membership (group placement is static)")
		}
		ecfg.Shard = &shard.Config{Groups: *shards, RF: *rf}
		// Coordinator failover: suspected coordinators' orphaned prepares
		// are terminated by the lowest live member of each prepared group.
		ecfg.FailureInterval = *fdIval
		ecfg.FailureTimeout = *fdTimeout
		ring, err = shard.NewRing(*ecfg.Shard, len(addrs))
		if err != nil {
			return err
		}
	} else if *rf > 0 {
		return fmt.Errorf("-rf needs -shards > 1")
	}
	ckptEnabled := *ckptIval > 0 || *ckptBytes > 0
	var wal *storage.WAL
	var groupWALs map[message.GroupID]*storage.WAL
	if *walPath != "" && ring != nil {
		// Per-group durability: one segmented WAL (plus checkpoints when
		// enabled) per local replication group, under <wal>/g<N>/, each
		// recovered independently so a restarted site resumes every group
		// from its own durable floor.
		if fi, serr := os.Stat(*walPath); serr == nil && !fi.IsDir() {
			return fmt.Errorf("partial replication requires a directory -wal (got file %s)", *walPath)
		}
		groupWALs = make(map[message.GroupID]*storage.WAL)
		stores := make(map[message.GroupID]*storage.Store)
		stacks := make(map[message.GroupID]*message.StackSync)
		pols := make(map[message.GroupID]checkpoint.Policy)
		for _, g := range ring.SiteGroups(message.SiteID(*id)) {
			gdir := filepath.Join(*walPath, g.String())
			var st *storage.Store
			if ckptEnabled {
				st2, w2, info, rerr := checkpoint.Recover(gdir, *walSegMB)
				if rerr != nil {
					return fmt.Errorf("recover group %s: %w", g, rerr)
				}
				st, groupWALs[g], stacks[g] = st2, w2, info.Stack
				pols[g] = checkpoint.Policy{
					Dir:         gdir,
					Interval:    *ckptIval,
					MaxWALBytes: *ckptBytes,
					Retain:      *ckptRetain,
				}
				if info.CheckpointIndex > 0 {
					log.Printf("site %d group %s loaded checkpoint %s (index %d), replayed %d wal records (skipped %d below the floor)",
						*id, g, info.CheckpointPath, info.CheckpointIndex, info.Replayed, info.Skipped)
				}
			} else {
				var rerr error
				st, groupWALs[g], rerr = storage.RecoverSegments(gdir, *walSegMB)
				if rerr != nil {
					return fmt.Errorf("recover group %s: %w", g, rerr)
				}
			}
			stores[g] = st
			if st.Applied() > 0 {
				log.Printf("site %d group %s recovered %d keys up to order index %d from %s",
					*id, g, st.Len(), st.Applied(), gdir)
			}
		}
		ecfg.GroupWAL = func(g message.GroupID) *storage.WAL { return groupWALs[g] }
		ecfg.GroupInitialStore = func(g message.GroupID) *storage.Store { return stores[g] }
		ecfg.GroupInitialStack = func(g message.GroupID) *message.StackSync { return stacks[g] }
		if ckptEnabled {
			ecfg.GroupCheckpoint = func(g message.GroupID) checkpoint.Policy { return pols[g] }
		}
		ecfg.GroupCommit = commitpipe.Policy{MaxBatch: *walBatch, MaxDelay: *walFlush}
	} else if *walPath != "" {
		var st *storage.Store
		if fi, serr := os.Stat(*walPath); serr == nil && !fi.IsDir() {
			// Legacy single-file log: replay it (truncating any torn tail so
			// appends resume on the valid prefix) and keep appending to the
			// same file.
			if ckptEnabled {
				return fmt.Errorf("checkpointing requires a directory -wal (got file %s)", *walPath)
			}
			var ferr error
			st, wal, ferr = storage.RecoverFile(*walPath)
			if ferr != nil {
				return fmt.Errorf("recover wal: %w", ferr)
			}
		} else if ckptEnabled {
			// Checkpoint-aware recovery: load the newest valid checkpoint,
			// replay only the WAL suffix above it, and resume the broadcast
			// stack's frontiers from the checkpoint.
			st2, w2, info, rerr := checkpoint.Recover(*walPath, *walSegMB)
			if rerr != nil {
				return fmt.Errorf("recover checkpoint+wal: %w", rerr)
			}
			st, wal = st2, w2
			ecfg.InitialStack = info.Stack
			ecfg.Checkpoint = checkpoint.Policy{
				Dir:         *walPath,
				Interval:    *ckptIval,
				MaxWALBytes: *ckptBytes,
				Retain:      *ckptRetain,
			}
			if info.CheckpointIndex > 0 {
				log.Printf("site %d loaded checkpoint %s (index %d), replayed %d wal records (skipped %d below the floor)",
					*id, info.CheckpointPath, info.CheckpointIndex, info.Replayed, info.Skipped)
			}
		} else {
			// Segmented directory log (the default for new deployments):
			// replay every segment so a restarted replica resumes from its
			// durable state, then append to the highest segment, rotating
			// at -wal-seg-bytes.
			var rerr error
			st, wal, rerr = storage.RecoverSegments(*walPath, *walSegMB)
			if rerr != nil {
				return fmt.Errorf("recover wal: %w", rerr)
			}
		}
		if st.Applied() > 0 {
			log.Printf("site %d recovered %d keys up to commit index %d from %s",
				*id, st.Len(), st.Applied(), *walPath)
		}
		ecfg.WAL = wal
		ecfg.InitialStore = st
		ecfg.GroupCommit = commitpipe.Policy{MaxBatch: *walBatch, MaxDelay: *walFlush}
	} else if ckptEnabled {
		return fmt.Errorf("checkpointing requires -wal")
	}
	var engine core.Engine
	switch *proto {
	case "reliable":
		engine = core.NewReliable(host, ecfg)
	case "causal":
		ecfg.CausalHeartbeat = *heartbeat
		engine = core.NewCausal(host, ecfg)
	case "atomic":
		switch *atomicMode {
		case "sequencer":
			ecfg.AtomicMode = broadcast.AtomicSequencer
		case "isis":
			ecfg.AtomicMode = broadcast.AtomicIsis
		case "batch":
			ecfg.AtomicMode = broadcast.AtomicBatch
			ecfg.AtomicBatchWindow = *batchWin
			ecfg.AtomicBatchMsgs = *batchMsgs
		default:
			return fmt.Errorf("unknown atomic mode %q", *atomicMode)
		}
		if ecfg.Shard != nil {
			se, serr := core.NewSharded(host, ecfg)
			if serr != nil {
				return serr
			}
			engine = se
		} else {
			engine = core.NewAtomic(host, ecfg)
		}
	case "baseline":
		engine = core.NewBaseline(host, ecfg)
	case "quorum":
		engine = core.NewQuorum(host, ecfg)
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	host.Bind(engine)
	if err := host.Start(); err != nil {
		return err
	}
	defer host.Close()
	sharded, _ := engine.(*core.ShardedEngine)
	if sharded != nil {
		log.Printf("site %d serving atomic replication over %d groups (rf %d) on %s; local groups %v",
			*id, ring.Groups(), len(ring.Members(0)), host.Addr(), sharded.LocalGroups())
	} else {
		log.Printf("site %d serving %s replication on %s", *id, *proto, host.Addr())
	}

	if *client != "" {
		ln, lerr := net.Listen("tcp", *client)
		if lerr != nil {
			return fmt.Errorf("client listen: %w", lerr)
		}
		defer ln.Close()
		log.Printf("site %d client port on %s", *id, ln.Addr())
		r := &replica{host: host, engine: engine, sharded: sharded, tracer: tr, proto: *proto, sites: len(addrs)}
		if ring != nil {
			r.groups = ring.Groups()
		}
		go r.serveClients(ln)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("site %d shutting down", *id)
	if len(groupWALs) > 0 {
		// Flush every local group's open group-commit batch (releasing its
		// deferred client acknowledgements) before closing the logs.
		host.Do(func() { sharded.FlushPipelines() })
		for _, g := range sharded.LocalGroups() {
			if w := groupWALs[g]; w != nil {
				if cerr := w.Close(); cerr != nil {
					log.Printf("site %d group %s wal close: %v", *id, g, cerr)
				}
			}
		}
	} else if wal != nil {
		// Flush the open group-commit batch (releasing its deferred client
		// acknowledgements) before closing the log.
		host.Do(func() { engine.Pipeline().Flush() })
		if cerr := wal.Close(); cerr != nil {
			log.Printf("site %d wal close: %v", *id, cerr)
		}
	}
	return nil
}

func parsePeers(s string) (map[message.SiteID]string, error) {
	out := make(map[message.SiteID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", id, err)
		}
		out[message.SiteID(n)] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers is required")
	}
	return out, nil
}

// replica bundles what the client protocol needs: the transport, the
// engine, and the span ring the TRACE command dumps.
type replica struct {
	host    *livenet.Host
	engine  core.Engine
	sharded *core.ShardedEngine // non-nil under partial replication
	tracer  *trace.Tracer
	proto   string
	sites   int
	groups  int // replication groups (0 or 1 = full replication)
}

func (r *replica) serveClients(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go r.handleClient(conn)
	}
}

func (r *replica) handleClient(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		resp := r.execute(sc.Text())
		if _, err := fmt.Fprintln(conn, resp); err != nil {
			return
		}
	}
}

// execute runs one client command line against the engine.
func (r *replica) execute(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command"
	}
	switch strings.ToUpper(fields[0]) {
	case "GET":
		if len(fields) < 2 {
			return "ERR GET needs at least one key"
		}
		spec := livenet.TxnSpec{ReadOnly: true}
		for _, k := range fields[1:] {
			spec.Reads = append(spec.Reads, message.Key(k))
		}
		res, err := livenet.ExecuteTxn(r.host, r.engine, spec, 10*time.Second)
		if err != nil {
			return "ERR " + err.Error()
		}
		if !res.Committed {
			return "ABORTED " + res.Reason
		}
		parts := make([]string, 0, len(spec.Reads))
		for _, k := range spec.Reads {
			v := res.Values[k]
			if v == nil {
				parts = append(parts, string(k)+"=<nil>")
				continue
			}
			parts = append(parts, fmt.Sprintf("%s=%s", k, v))
		}
		return "OK " + strings.Join(parts, " ")
	case "SET":
		if len(fields) < 2 {
			return "ERR SET needs at least one k=v"
		}
		spec := livenet.TxnSpec{}
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Sprintf("ERR bad pair %q", kv)
			}
			spec.Writes = append(spec.Writes, message.KV{Key: message.Key(k), Value: message.Value(v)})
		}
		res, err := livenet.ExecuteTxn(r.host, r.engine, spec, 10*time.Second)
		if err != nil {
			return "ERR " + err.Error()
		}
		if !res.Committed {
			return "ABORTED " + res.Reason
		}
		return "OK committed"
	case "STATS":
		var s *core.Stats
		var keys int
		var pipe, ckpt, sharded string
		r.host.Do(func() {
			s = r.engine.Stats()
			keys = r.engine.Store().Len()
			pipe = r.engine.Pipeline().Summary()
			if r.sharded != nil {
				// Per-group progress plus the cross-shard leak oracle: keys
				// and last processed order index of every local group.
				parts := make([]string, 0, len(r.sharded.LocalGroups())+1)
				for _, g := range r.sharded.LocalGroups() {
					parts = append(parts, fmt.Sprintf("%s_keys=%d %s_idx=%d",
						g, r.sharded.GroupStore(g).Len(), g, r.sharded.GroupCertIndex(g)))
				}
				parts = append(parts, fmt.Sprintf("pending_coord=%d", r.sharded.PendingCoord()))
				// Failover health: peers this site currently suspects and
				// prepares stranded by a suspected coordinator (nonzero
				// steady-state means a termination round is stuck).
				parts = append(parts, fmt.Sprintf("suspects=%d orphaned_prepares=%d",
					len(r.sharded.Suspects()), r.sharded.OrphanedPrepares()))
				sharded = " " + strings.Join(parts, " ")
			}
			if cp := r.engine.Checkpointer(); cp != nil {
				cs := cp.Stats()
				age := time.Duration(0)
				if cs.Checkpoints > 0 {
					age = r.host.Now() - cs.LastUnix
				}
				ckpt = fmt.Sprintf(" ckpt_count=%d ckpt_index=%d ckpt_bytes=%d ckpt_age=%s segs_truncated=%d state_chunks=%d state_bytes=%d",
					cs.Checkpoints, cs.LastIndex, cs.LastBytes, age.Round(time.Millisecond),
					cs.SegmentsTruncated, s.StateChunksSent, s.StateBytesSent)
			}
		})
		sent, recv, dropped := r.host.Counters()
		return fmt.Sprintf("OK begun=%d committed=%d ro=%d aborted=%d keys=%d sent=%d recv=%d dropped=%d %s %s%s%s",
			s.Begun, s.Committed, s.ReadOnlyCommitted, s.Aborted, keys, sent, recv, dropped,
			pipe, r.host.TransportSummary(), ckpt, sharded)
	case "TRACE":
		if r.tracer == nil {
			return "ERR tracing disabled (-trace-buf 0)"
		}
		var sb strings.Builder
		meta := trace.Meta{Proto: r.proto, Sites: r.sites, Groups: r.groups}
		if err := trace.WriteTracer(&sb, meta, r.tracer); err != nil {
			return "ERR " + err.Error()
		}
		// Multi-line response: JSONL dump terminated by a lone ".".
		return sb.String() + "."
	default:
		return fmt.Sprintf("ERR unknown command %q", fields[0])
	}
}
