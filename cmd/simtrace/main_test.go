package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenExport pins the JSONL export for a fixed seed: the simulator is
// deterministic, so the span stream — timestamps included — must be
// byte-identical run to run. A diff here means either the export format or
// the protocols' emission changed; regenerate with -update when intended.
func TestGoldenExport(t *testing.T) {
	for _, proto := range []string{"reliable", "causal", "atomic"} {
		t.Run(proto, func(t *testing.T) {
			o := simOpts{proto: proto, sites: 3, txns: 5, seed: 7,
				atomicMode: "sequencer", traceCap: 1 << 12}
			tracers, _, err := simulate(o)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := exportJSONL(&buf, o, tracers); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "export_"+proto+".golden.jsonl")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("export differs from %s (%d vs %d bytes); run with -update if the change is intended",
					golden, buf.Len(), len(want))
			}
			// The golden stream must itself parse and carry its meta.
			dumps, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(dumps) != o.sites {
				t.Fatalf("got %d site dumps, want %d", len(dumps), o.sites)
			}
			for _, d := range dumps {
				if d.Meta.Proto != proto || d.Meta.Seed != 7 {
					t.Fatalf("meta %+v", d.Meta)
				}
				if len(d.Spans) == 0 {
					t.Fatal("site dump has no spans")
				}
			}
		})
	}
}

// TestRenderersCoverStream keeps the two renderers in step with the span
// stream: every span renders in text mode, and the Mermaid diagram emits a
// bounded, non-empty message list.
func TestRenderersCoverStream(t *testing.T) {
	o := simOpts{proto: "atomic", sites: 3, txns: 4, seed: 1,
		atomicMode: "isis", traceCap: 1 << 12}
	tracers, _, err := simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	spans := gather(tracers)
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	var text bytes.Buffer
	renderText(&text, spans, tracers)
	if got := bytes.Count(text.Bytes(), []byte("\n")); got != len(spans) {
		t.Fatalf("text renderer emitted %d lines for %d spans", got, len(spans))
	}
	var mm bytes.Buffer
	renderMermaid(&mm, o.sites, spans, 10)
	out := mm.String()
	for _, want := range []string{"sequenceDiagram", "participant s0", "participant s2", "truncated at 10"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("mermaid output missing %q:\n%s", want, out)
		}
	}
}
