// Command simtrace runs a small simulated workload with per-site event
// logging enabled and dumps the trace — the fastest way to watch the
// protocols exchange messages, or to debug a change to one of them.
//
//	simtrace -proto causal -sites 3 -txns 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/message"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	proto := flag.String("proto", "causal", "protocol: reliable|causal|atomic|baseline|quorum")
	sites := flag.Int("sites", 3, "cluster size")
	txns := flag.Int("txns", 4, "transactions to run")
	seed := flag.Int64("seed", 1, "seed")
	mermaid := flag.Bool("mermaid", false, "emit a Mermaid sequence diagram instead of a text trace")
	maxMsgs := flag.Int("max-msgs", 120, "cap on diagram messages")
	flag.Parse()

	cluster := sim.NewCluster(*sites, netsim.Fixed{Delay: time.Millisecond}, *seed)
	var diagram []string
	if *mermaid {
		cluster.OnDeliver = func(from, to message.SiteID, m message.Message, at time.Duration) {
			if len(diagram) >= *maxMsgs {
				return
			}
			diagram = append(diagram, fmt.Sprintf("    s%d->>s%d: %s", from, to, describe(m)))
		}
	} else {
		cluster.LogWriter = os.Stdout
	}

	cfg := core.Config{}
	if *proto == harness.ProtoCausal {
		cfg.CausalHeartbeat = 50 * time.Millisecond
	}
	engines := make([]core.Engine, *sites)
	for i := 0; i < *sites; i++ {
		rt := cluster.Runtime(message.SiteID(i))
		var e core.Engine
		switch *proto {
		case harness.ProtoReliable:
			e = core.NewReliable(rt, cfg)
		case harness.ProtoCausal:
			e = core.NewCausal(rt, cfg)
		case harness.ProtoAtomic:
			e = core.NewAtomic(rt, cfg)
		case harness.ProtoBaseline:
			e = core.NewBaseline(rt, cfg)
		case "quorum":
			e = core.NewQuorum(rt, cfg)
		default:
			return fmt.Errorf("unknown protocol %q", *proto)
		}
		engines[i] = e
		cluster.Bind(message.SiteID(i), e)
	}
	cluster.Start()

	txs, err := workload.Generate(workload.Spec{
		Sites: *sites, Count: *txns, Window: time.Duration(*txns) * 100 * time.Millisecond,
		Keys: 8, ReadsPerTxn: 1, WritesPerTxn: 1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	narrate := func(format string, args ...any) {
		if !*mermaid {
			fmt.Printf(format, args...)
		}
	}
	for i, wt := range txs {
		i, wt := i, wt
		cluster.Schedule(wt.At, func() {
			e := engines[wt.Site]
			tx := e.Begin(false)
			narrate("%10v %v | client: begin txn %d (%v)\n", cluster.Now(), wt.Site, i, tx.ID)
			if *mermaid {
				diagram = append(diagram, fmt.Sprintf("    Note over s%d: begin %v", wt.Site, tx.ID))
			}
			for _, w := range wt.Writes {
				if err := e.Write(tx, w.Key, w.Value); err != nil {
					narrate("%10v %v | client: txn %d write error: %v\n", cluster.Now(), wt.Site, i, err)
					return
				}
				narrate("%10v %v | client: txn %d write %s\n", cluster.Now(), wt.Site, i, w.Key)
			}
			e.Commit(tx, func(o core.Outcome, r core.AbortReason) {
				narrate("%10v %v | client: txn %d %v (%v)\n", cluster.Now(), wt.Site, i, o, r)
				if *mermaid && len(diagram) < *maxMsgs+8 {
					diagram = append(diagram, fmt.Sprintf("    Note over s%d: %v %v", wt.Site, tx.ID, o))
				}
			})
		})
	}
	if _, err := cluster.Run(30 * time.Second); err != nil {
		return err
	}
	if *mermaid {
		fmt.Println("sequenceDiagram")
		for i := 0; i < *sites; i++ {
			fmt.Printf("    participant s%d\n", i)
		}
		for _, line := range diagram {
			fmt.Println(line)
		}
		return nil
	}
	st := cluster.Stats()
	fmt.Printf("\ntotal: %d messages, %d bytes\n", st.Messages, st.Bytes)
	for kind, n := range st.ByKind {
		fmt.Printf("  %-14v %d\n", kind, n)
	}
	return nil
}

// describe renders a message for the sequence diagram, unwrapping
// broadcast envelopes.
func describe(m message.Message) string {
	if b, ok := m.(*message.Bcast); ok {
		tag := ""
		if b.Relayed {
			tag = " (relay)"
		}
		return fmt.Sprintf("%s[%v %d]%s: %s", b.Class, b.Origin, b.Seq, tag, describe(b.Payload))
	}
	switch t := m.(type) {
	case *message.WriteReq:
		return fmt.Sprintf("WriteReq %v %s", t.Txn, t.Key)
	case *message.WriteAck:
		if t.OK {
			return fmt.Sprintf("WriteAck %v ok", t.Txn)
		}
		return fmt.Sprintf("WriteAck %v NACK", t.Txn)
	case *message.Vote:
		return fmt.Sprintf("Vote %v %v", t.Txn, t.Yes)
	case *message.VoteReq:
		return fmt.Sprintf("VoteReq %v", t.Txn)
	case *message.Decision:
		if t.Commit {
			return fmt.Sprintf("Decision %v commit", t.Txn)
		}
		return fmt.Sprintf("Decision %v abort", t.Txn)
	case *message.CommitReq:
		return fmt.Sprintf("CommitReq %v", t.Txn)
	case *message.SeqOrder:
		return fmt.Sprintf("SeqOrder %d entries", len(t.Entries))
	default:
		return t.Kind().String()
	}
}
