// Command simtrace runs a small simulated workload with per-site span
// tracing enabled and renders the collected trace — the fastest way to
// watch the protocols exchange messages, or to debug a change to one of
// them. All three output modes (chronological text, Mermaid sequence
// diagram, JSONL export) are derived from the same span stream that
// internal/trace records, so what simtrace shows is exactly what
// cmd/tracecheck analyzes.
//
//	simtrace -proto causal -sites 3 -txns 4
//	simtrace -proto atomic -atomic-mode isis -mermaid
//	simtrace -proto reliable -txns 25 -seed 7 -export - | tracecheck
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/message"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

// simOpts parameterizes one traced simulation run.
type simOpts struct {
	proto      string
	sites      int
	txns       int
	seed       int64
	atomicMode string
	traceCap   int
}

func run() error {
	proto := flag.String("proto", "causal", "protocol: reliable|causal|atomic|baseline|quorum")
	sites := flag.Int("sites", 3, "cluster size")
	txns := flag.Int("txns", 4, "transactions to run")
	seed := flag.Int64("seed", 1, "seed")
	atomicMode := flag.String("atomic-mode", "sequencer", "atomic broadcast mode: sequencer|isis|batch")
	mermaid := flag.Bool("mermaid", false, "emit a Mermaid sequence diagram instead of a text trace")
	maxMsgs := flag.Int("max-msgs", 120, "cap on diagram messages")
	export := flag.String("export", "", "write the span stream as JSONL to this path ('-' for stdout) instead of rendering")
	traceCap := flag.Int("trace-cap", trace.DefaultCap, "per-site span ring capacity")
	flag.Parse()

	o := simOpts{proto: *proto, sites: *sites, txns: *txns, seed: *seed,
		atomicMode: *atomicMode, traceCap: *traceCap}
	tracers, stats, err := simulate(o)
	if err != nil {
		return err
	}

	if *export != "" {
		var w io.Writer = os.Stdout
		if *export != "-" {
			f, err := os.Create(*export)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return exportJSONL(w, o, tracers)
	}

	spans := gather(tracers)
	if *mermaid {
		renderMermaid(os.Stdout, *sites, spans, *maxMsgs)
		return nil
	}
	renderText(os.Stdout, spans, tracers)
	fmt.Printf("\ntotal: %d messages, %d bytes\n", stats.Messages, stats.Bytes)
	return nil
}

// simulate runs the traced workload and returns every site's tracer. The
// whole run is deterministic under (opts.seed, opts) — the golden-export
// test depends on that.
func simulate(o simOpts) ([]*trace.Tracer, sim.NetStats, error) {
	cluster := sim.NewCluster(o.sites, netsim.Fixed{Delay: time.Millisecond}, o.seed)
	cfg := core.Config{}
	switch o.atomicMode {
	case "sequencer":
		cfg.AtomicMode = broadcast.AtomicSequencer
	case "isis":
		cfg.AtomicMode = broadcast.AtomicIsis
	case "batch":
		cfg.AtomicMode = broadcast.AtomicBatch
	default:
		return nil, sim.NetStats{}, fmt.Errorf("unknown atomic mode %q", o.atomicMode)
	}
	if o.proto == harness.ProtoCausal {
		cfg.CausalHeartbeat = 50 * time.Millisecond
	}
	engines := make([]core.Engine, o.sites)
	tracers := make([]*trace.Tracer, o.sites)
	for i := 0; i < o.sites; i++ {
		rt := cluster.Runtime(message.SiteID(i))
		scfg := cfg
		scfg.Tracer = trace.New(message.SiteID(i), o.traceCap, rt.Now)
		tracers[i] = scfg.Tracer
		var e core.Engine
		switch o.proto {
		case harness.ProtoReliable:
			e = core.NewReliable(rt, scfg)
		case harness.ProtoCausal:
			e = core.NewCausal(rt, scfg)
		case harness.ProtoAtomic:
			e = core.NewAtomic(rt, scfg)
		case harness.ProtoBaseline:
			e = core.NewBaseline(rt, scfg)
		case harness.ProtoQuorum:
			e = core.NewQuorum(rt, scfg)
		default:
			return nil, sim.NetStats{}, fmt.Errorf("unknown protocol %q", o.proto)
		}
		engines[i] = e
		cluster.Bind(message.SiteID(i), e)
	}
	cluster.Start()

	txs, err := workload.Generate(workload.Spec{
		Sites: o.sites, Count: o.txns, Window: time.Duration(o.txns) * 100 * time.Millisecond,
		Keys: 8, ReadsPerTxn: 1, WritesPerTxn: 1, Seed: o.seed,
	})
	if err != nil {
		return nil, sim.NetStats{}, err
	}
	for _, wt := range txs {
		wt := wt
		cluster.Schedule(wt.At, func() {
			e := engines[wt.Site]
			tx := e.Begin(false)
			for _, w := range wt.Writes {
				if err := e.Write(tx, w.Key, w.Value); err != nil {
					return
				}
			}
			e.Commit(tx, func(core.Outcome, core.AbortReason) {})
		})
	}
	if _, err := cluster.Run(30 * time.Second); err != nil {
		return nil, sim.NetStats{}, err
	}
	return tracers, cluster.Stats(), nil
}

// gather merges every site's spans into one slice ordered by start time
// (site, then sequence break ties) — the global timeline the renderers walk.
func gather(tracers []*trace.Tracer) []trace.Span {
	var all []trace.Span
	for _, t := range tracers {
		all = append(all, t.Spans()...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		if all[i].Site != all[j].Site {
			return all[i].Site < all[j].Site
		}
		return all[i].Kind < all[j].Kind
	})
	return all
}

// exportJSONL writes one site's meta line followed by its spans, per site —
// the concatenated multi-site form cmd/tracecheck consumes.
func exportJSONL(w io.Writer, o simOpts, tracers []*trace.Tracer) error {
	bw := bufio.NewWriter(w)
	for _, t := range tracers {
		meta := trace.Meta{Proto: o.proto, Sites: o.sites, AtomicMode: o.atomicMode, Seed: o.seed}
		if err := trace.WriteTracer(bw, meta, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// renderText prints the chronological span listing.
func renderText(w io.Writer, spans []trace.Span, tracers []*trace.Tracer) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, s := range spans {
		dur := ""
		if d := s.Duration(); d > 0 {
			dur = fmt.Sprintf(" (+%v)", d)
		}
		peer := ""
		if s.Peer != trace.NoPeer && s.Peer != s.Site {
			peer = fmt.Sprintf(" peer=s%d", s.Peer)
		}
		fmt.Fprintf(bw, "%12v  s%d  %-14s %-8v seq=%-4d extra=%d%s%s\n",
			s.Start, s.Site, s.Kind, s.Trace, s.Seq, s.Extra, peer, dur)
	}
	dropped := 0
	for _, t := range tracers {
		dropped += int(t.Dropped())
	}
	if dropped > 0 {
		fmt.Fprintf(bw, "\n(ring overflow: %d spans dropped; raise -trace-cap)\n", dropped)
	}
}

// renderMermaid derives a sequence diagram from the span stream: span kinds
// that record a remote arrival become arrows from the peer site, local
// milestones become notes.
func renderMermaid(w io.Writer, sites int, spans []trace.Span, maxMsgs int) {
	fmt.Fprintln(w, "sequenceDiagram")
	for i := 0; i < sites; i++ {
		fmt.Fprintf(w, "    participant s%d\n", i)
	}
	n := 0
	for _, s := range spans {
		if n >= maxMsgs {
			fmt.Fprintf(w, "    Note over s0: (truncated at %d messages)\n", maxMsgs)
			return
		}
		line := mermaidLine(s)
		if line == "" {
			continue
		}
		fmt.Fprintln(w, line)
		n++
	}
}

// mermaidLine renders one span, or "" for kinds the diagram omits.
func mermaidLine(s trace.Span) string {
	remote := func(label string) string {
		if s.Peer == trace.NoPeer || s.Peer == s.Site {
			return fmt.Sprintf("    Note over s%d: %s", s.Site, label)
		}
		return fmt.Sprintf("    s%d->>s%d: %s", s.Peer, s.Site, label)
	}
	switch s.Kind {
	case trace.KindBegin:
		return fmt.Sprintf("    Note over s%d: begin %v", s.Site, s.Trace)
	case trace.KindBcastSend:
		return fmt.Sprintf("    Note over s%d: bcast %v (class %d, seq %d)", s.Site, s.Trace, s.Extra, s.Seq)
	case trace.KindBcastDeliver:
		return remote(fmt.Sprintf("deliver %v seq %d", s.Trace, s.Seq))
	case trace.KindAck:
		return remote(fmt.Sprintf("ack %v op %d", s.Trace, s.Seq))
	case trace.KindNack:
		return remote(fmt.Sprintf("NACK %v", s.Trace))
	case trace.KindVote:
		yes := "no"
		if s.Extra == 1 {
			yes = "yes"
		}
		return remote(fmt.Sprintf("vote %v %s", s.Trace, yes))
	case trace.KindReadReply:
		return remote(fmt.Sprintf("read-reply %v op %d", s.Trace, s.Seq))
	case trace.KindLockGrant:
		return remote(fmt.Sprintf("lock-grant %v", s.Trace))
	case trace.KindIsisPropose:
		return fmt.Sprintf("    Note over s%d: propose ts %d for %v", s.Site, s.Seq, s.Trace)
	case trace.KindIsisFinal:
		return fmt.Sprintf("    Note over s%d: final ts %d for %v", s.Site, s.Seq, s.Trace)
	case trace.KindSeqOrder:
		return fmt.Sprintf("    Note over s%d: sequencer orders %v at %d", s.Site, s.Trace, s.Seq)
	case trace.KindCert:
		verdict := "abort"
		if s.Extra == 1 {
			verdict = "commit"
		}
		return fmt.Sprintf("    Note over s%d: certify %v at %d: %s", s.Site, s.Trace, s.Seq, verdict)
	case trace.KindOutcome:
		verdict := "aborted"
		if s.Extra == 1 {
			verdict = "committed"
		}
		return fmt.Sprintf("    Note over s%d: %v %s", s.Site, s.Trace, verdict)
	default:
		return ""
	}
}
