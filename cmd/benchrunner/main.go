// Command benchrunner regenerates the full experiment suite (E1-E8 in
// DESIGN.md) and prints the result tables. Every run is deterministic under
// its seed; pass -seed to replicate with different randomness.
//
//	benchrunner                                  # full suite
//	benchrunner -quick                           # reduced sweep for a fast look
//	benchrunner -run E3,E6                       # selected experiments
//	benchrunner -quick -json BENCH_2026-08-05.json
//
// The -json document carries, per experiment, the headline metrics plus one
// record per harness run with throughput, abort rate, and commit-latency
// percentiles (p50/p90/p99) — the structured counterpart of the printed
// tables, suitable for CI artifact upload and regression diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// benchDoc is the -json output: run metadata, the per-experiment headline
// metrics, and one RunSummary per harness run.
type benchDoc struct {
	Date       string                        `json:"date"`
	Quick      bool                          `json:"quick"`
	Seed       int64                         `json:"seed"`
	Metrics    map[string]map[string]float64 `json:"metrics"`
	Runs       []experiments.RunSummary      `json:"runs"`
	Violations []string                      `json:"violations,omitempty"`
}

// replicationStudy reports headline metrics as mean±stddev across seeds —
// the variance check for the single-seed tables.
func replicationStudy(seeds int, quick bool) error {
	count := 400
	if quick {
		count = 100
	}
	tbl := harness.NewTable(fmt.Sprintf("Seed replication study (%d seeds, mixed workload, 5 sites)", seeds),
		"protocol", "msgs/commit", "abort rate", "mean latency (µs)", "throughput/s")
	protos := append(append([]string(nil), harness.Protocols...), harness.ProtoQuorum)
	for _, proto := range protos {
		ecfg := core.Config{}
		if proto == harness.ProtoCausal {
			ecfg.CausalHeartbeat = 25 * time.Millisecond
		}
		rep, err := harness.Replicate(harness.Options{
			Protocol: proto,
			Seed:     1,
			Engine:   ecfg,
			Workload: workload.Spec{
				Sites: 5, Count: count, Window: 15 * time.Second,
				Keys: 64, HotKeys: 8, HotProb: 0.3,
				ReadOnlyFraction: 0.25, ReadsPerTxn: 2, WritesPerTxn: 2, Seed: 1,
			},
		}, seeds)
		if err != nil {
			return err
		}
		tbl.Add(proto, rep.MsgsPerCommit.String(), rep.AbortRate.String(),
			rep.MeanLatencyMicro.String(), rep.Throughput.String())
	}
	fmt.Println(tbl)
	return nil
}

func run() error {
	quick := flag.Bool("quick", false, "reduced sweeps")
	seed := flag.Int64("seed", 0, "seed offset for replication runs")
	sel := flag.String("run", "", "comma-separated experiment ids (default all), e.g. E1,E3")
	jsonOut := flag.String("json", "", "also write all metrics as JSON to this file (- for stdout)")
	seeds := flag.Int("seeds", 0, "run a seed-replication study (N seeds per protocol) instead of the experiment suite")
	flag.Parse()

	if *seeds > 0 {
		return replicationStudy(*seeds, *quick)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	wanted := map[string]bool{}
	for _, id := range strings.Split(*sel, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}

	all := map[string]func(experiments.Config) (*experiments.Report, error){
		"E1":  experiments.E1Messages,
		"E2":  experiments.E2CommitLatency,
		"E3":  experiments.E3AbortContention,
		"E4":  experiments.E4ThroughputSites,
		"E5":  experiments.E5WriteMix,
		"E6":  experiments.E6CausalHeartbeat,
		"E7":  experiments.E7Availability,
		"E8":  experiments.E8Ablation,
		"E9":  experiments.E9Batching,
		"E10": experiments.E10Quorum,
		"E11": experiments.E11SlowSite,
		"E12": experiments.E12SnapshotReads,
		"E13": experiments.E13GroupCommit,
		"E14": experiments.E14OrdererBatching,
		"E15": experiments.E15CheckpointRecovery,
		"E16": experiments.E16PartialReplication,
		"E17": experiments.E17ChaosFailover,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}

	violations := 0
	doc := benchDoc{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Quick:   *quick,
		Seed:    *seed,
		Metrics: make(map[string]map[string]float64),
	}
	for _, id := range order {
		if len(wanted) > 0 && !wanted[id] {
			continue
		}
		rep, err := all[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("\n######## %s ########\n", rep.ID)
		for _, t := range rep.Tables {
			fmt.Println(t)
		}
		for _, v := range rep.Violations {
			violations++
			fmt.Printf("!! EXPECTATION VIOLATED: %s\n", v)
		}
		doc.Metrics[rep.ID] = rep.Metrics
		doc.Runs = append(doc.Runs, rep.Runs...)
		doc.Violations = append(doc.Violations, rep.Violations...)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d expectation(s) violated", violations)
	}
	fmt.Println("all expectations hold")
	return nil
}
