// Command walcheck audits the durable state of a cluster offline: given
// the write-ahead logs of several sites, it replays each one and
// cross-checks that the sites' committed version chains are mutually
// consistent (per key, one site's chain must be a contiguous window of
// another's — lagging or resynced replicas are fine, reordered or
// divergent ones are not), then reports per-site summaries.
//
// A site's log is either a single file or a segmented directory as written
// by replicadb's group-commit WAL (wal-000001.seg, wal-000002.seg, ...):
//
//	walcheck site0.wal site1.wal site2.wal
//	walcheck wal0/ wal1/ wal2/
//
// A torn tail (crash between a batch's write and its completion) at the end
// of a log — the final segment of a directory, or a single file — ends that
// log's replay silently: that is the format working as designed. A checksum
// mismatch, or a truncated record in a non-final segment (records missing
// mid-log), is corruption: walcheck warns, cross-checks the valid prefix
// anyway, and exits nonzero.
//
// Segmented directories may also hold checkpoint files (ckpt-*.ckpt) written
// by internal/checkpoint. walcheck verifies each one's checksum, seeds the
// site's version chains from the newest valid checkpoint before replaying the
// WAL suffix above its applied index, and cross-checks that the truncated WAL
// still meets the checkpoint (a first record more than one index above the
// checkpoint's applied index means truncation outran durability). Orphaned
// ckpt-*.ckpt.tmp files — a crash mid-checkpoint-write — are reported but are
// not corruption: recovery ignores them by design.
//
// Exit status: 0 consistent, 1 divergence, corruption, or unreadable log.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/message"
	"repro/internal/sgraph"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	verbose := flag.Bool("v", false, "print per-key version chains")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: walcheck [-v] site0.wal [site1.wal ...]")
	}
	rec := sgraph.NewRecorder()
	corrupt := false
	for i, path := range flag.Args() {
		site := message.SiteID(i)
		var floor uint64
		var ckptNote string
		isDir := storage.IsSegmentDir(path)
		if isDir {
			var ckptCorrupt bool
			floor, ckptNote, ckptCorrupt = seedFromCheckpoint(path, site, rec)
			corrupt = corrupt || ckptCorrupt
		}
		var records, writes, skipped int
		var first, last uint64
		scan := func(r storage.Record) error {
			if first == 0 {
				first = r.Index
			}
			if r.Index <= floor {
				// Already covered by the checkpoint: recovery skips these
				// too (the crash-between-rename-and-truncation window).
				skipped++
				return nil
			}
			records++
			writes += len(r.Writes)
			last = r.Index
			for _, w := range r.Writes {
				rec.RecordApply(site, w.Key, r.Txn)
			}
			return nil
		}
		var err error
		if isDir {
			err = storage.ReplaySegments(path, scan)
		} else {
			f, oerr := os.Open(path)
			if oerr != nil {
				return oerr
			}
			err = storage.Replay(f, scan)
			f.Close()
			if err != nil {
				err = fmt.Errorf("%s: %w", path, err)
			}
		}
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				return err
			}
			// The valid prefix was already delivered; cross-check it, warn
			// once, and fail at exit.
			fmt.Fprintf(os.Stderr, "walcheck: %v (checking the valid prefix)\n", err)
			corrupt = true
		}
		if floor > 0 && first > floor+1 {
			// The retained WAL does not reach back to the checkpoint: records
			// between applied index floor and `first` are gone from both the
			// checkpoint and the log.
			fmt.Fprintf(os.Stderr, "walcheck: %s: gap between checkpoint (applied index %d) and first WAL record (index %d)\n",
				path, floor, first)
			corrupt = true
		}
		if skipped > 0 {
			ckptNote += fmt.Sprintf(", %d records below the checkpoint", skipped)
		}
		fmt.Printf("%-24s site %v: %d commits, %d writes, last index %d%s\n", path, site, records, writes, last, ckptNote)
	}
	orders, err := rec.VersionOrders()
	if err != nil {
		return fmt.Errorf("DIVERGENCE: %w", err)
	}
	fmt.Printf("\nconsistent: %d keys across %d logs\n", len(orders), flag.NArg())
	if *verbose {
		for key, chain := range orders {
			fmt.Printf("  %-20s", key)
			for _, w := range chain {
				fmt.Printf(" %v", w)
			}
			fmt.Println()
		}
	}
	if corrupt {
		return fmt.Errorf("corruption detected (the valid prefixes are consistent)")
	}
	return nil
}

// seedFromCheckpoint audits the checkpoint files beside a segmented WAL:
// every ckpt-*.ckpt is checksum-verified (a mismatch is corruption), orphaned
// ckpt-*.ckpt.tmp files are reported, and the newest valid checkpoint seeds
// the recorder with the site's retained version chains. It returns the
// checkpoint's applied index (the replay floor), a note for the per-site
// summary line, and whether any checkpoint file was corrupt.
func seedFromCheckpoint(dir string, site message.SiteID, rec *sgraph.Recorder) (floor uint64, note string, corrupt bool) {
	files, err := checkpoint.Files(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walcheck: %s: listing checkpoints: %v\n", dir, err)
		return 0, "", true
	}
	var newest *checkpoint.Checkpoint
	for _, f := range files {
		ck, err := checkpoint.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "walcheck: %s: %v\n", f, err)
			corrupt = true
			continue
		}
		newest = ck // Files sorts ascending, so the last valid one is newest.
	}
	if tmps, err := checkpoint.TempFiles(dir); err == nil {
		for _, f := range tmps {
			fmt.Fprintf(os.Stderr, "walcheck: %s: orphaned checkpoint temp file (crash mid-write; ignored by recovery, safe to delete)\n", f)
		}
	}
	if newest == nil {
		return 0, "", corrupt
	}
	for _, e := range newest.Entries {
		for _, v := range e.Versions {
			rec.RecordApply(site, e.Key, v.Writer)
		}
	}
	return newest.Applied, fmt.Sprintf(", checkpoint at index %d (%d keys)", newest.Applied, len(newest.Entries)), corrupt
}
