// Command walcheck audits the durable state of a cluster offline: given
// the write-ahead logs of several sites, it replays each one and
// cross-checks that the sites' committed version chains are mutually
// consistent (per key, one site's chain must be a contiguous window of
// another's — lagging or resynced replicas are fine, reordered or
// divergent ones are not), then reports per-site summaries.
//
// A site's log is either a single file or a segmented directory as written
// by replicadb's group-commit WAL (wal-000001.seg, wal-000002.seg, ...):
//
//	walcheck site0.wal site1.wal site2.wal
//	walcheck wal0/ wal1/ wal2/
//
// A torn tail (crash between a batch's write and its completion) at the end
// of a log — the final segment of a directory, or a single file — ends that
// log's replay silently: that is the format working as designed. A checksum
// mismatch, or a truncated record in a non-final segment (records missing
// mid-log), is corruption: walcheck warns, cross-checks the valid prefix
// anyway, and exits nonzero.
//
// Exit status: 0 consistent, 1 divergence, corruption, or unreadable log.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/message"
	"repro/internal/sgraph"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	verbose := flag.Bool("v", false, "print per-key version chains")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: walcheck [-v] site0.wal [site1.wal ...]")
	}
	rec := sgraph.NewRecorder()
	corrupt := false
	for i, path := range flag.Args() {
		site := message.SiteID(i)
		var records, writes int
		var last uint64
		scan := func(r storage.Record) error {
			records++
			writes += len(r.Writes)
			last = r.Index
			for _, w := range r.Writes {
				rec.RecordApply(site, w.Key, r.Txn)
			}
			return nil
		}
		var err error
		if storage.IsSegmentDir(path) {
			err = storage.ReplaySegments(path, scan)
		} else {
			f, oerr := os.Open(path)
			if oerr != nil {
				return oerr
			}
			err = storage.Replay(f, scan)
			f.Close()
			if err != nil {
				err = fmt.Errorf("%s: %w", path, err)
			}
		}
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				return err
			}
			// The valid prefix was already delivered; cross-check it, warn
			// once, and fail at exit.
			fmt.Fprintf(os.Stderr, "walcheck: %v (checking the valid prefix)\n", err)
			corrupt = true
		}
		fmt.Printf("%-24s site %v: %d commits, %d writes, last index %d\n", path, site, records, writes, last)
	}
	orders, err := rec.VersionOrders()
	if err != nil {
		return fmt.Errorf("DIVERGENCE: %w", err)
	}
	fmt.Printf("\nconsistent: %d keys across %d logs\n", len(orders), flag.NArg())
	if *verbose {
		for key, chain := range orders {
			fmt.Printf("  %-20s", key)
			for _, w := range chain {
				fmt.Printf(" %v", w)
			}
			fmt.Println()
		}
	}
	if corrupt {
		return fmt.Errorf("corruption detected (the valid prefixes are consistent)")
	}
	return nil
}
