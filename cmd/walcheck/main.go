// Command walcheck audits the durable state of a cluster offline: given
// the write-ahead logs of several sites, it replays each one and
// cross-checks that the sites' committed version chains are mutually
// consistent (per key, one site's chain must be a contiguous window of
// another's — lagging or resynced replicas are fine, reordered or
// divergent ones are not), then reports per-site summaries.
//
//	walcheck site0.wal site1.wal site2.wal
//
// Exit status: 0 consistent, 1 divergence or unreadable log.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/message"
	"repro/internal/sgraph"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	verbose := flag.Bool("v", false, "print per-key version chains")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: walcheck [-v] site0.wal [site1.wal ...]")
	}
	rec := sgraph.NewRecorder()
	for i, path := range flag.Args() {
		site := message.SiteID(i)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var records, writes int
		var last uint64
		err = storage.Replay(f, func(r storage.Record) error {
			records++
			writes += len(r.Writes)
			last = r.Index
			for _, w := range r.Writes {
				rec.RecordApply(site, w.Key, r.Txn)
			}
			return nil
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%-24s site %v: %d commits, %d writes, last index %d\n", path, site, records, writes, last)
	}
	orders, err := rec.VersionOrders()
	if err != nil {
		return fmt.Errorf("DIVERGENCE: %w", err)
	}
	fmt.Printf("\nconsistent: %d keys across %d logs\n", len(orders), flag.NArg())
	if *verbose {
		for key, chain := range orders {
			fmt.Printf("  %-20s", key)
			for _, w := range chain {
				fmt.Printf(" %v", w)
			}
			fmt.Println()
		}
	}
	return nil
}
