// Command walcheck audits the durable state of a cluster offline: given
// the write-ahead logs of several sites, it replays each one and
// cross-checks that the sites' committed version chains are mutually
// consistent (per key, one site's chain must be a contiguous window of
// another's — lagging or resynced replicas are fine, reordered or
// divergent ones are not), then reports per-site summaries.
//
// A site's log is either a single file or a segmented directory as written
// by replicadb's group-commit WAL (wal-000001.seg, wal-000002.seg, ...):
//
//	walcheck site0.wal site1.wal site2.wal
//	walcheck wal0/ wal1/ wal2/
//
// Under partial replication a site's directory instead holds one
// subdirectory per replication group it replicates (g0/, g1/, ...), each a
// segmented WAL (plus checkpoints) of that group's commits. walcheck
// detects the layout, replays every group log, and cross-checks version
// chains within each group independently — group-local order indices are
// not comparable across groups, and different sites replicate different
// group subsets:
//
//	walcheck wal0/ wal1/ wal2/   # where wal0/g0, wal0/g1, wal1/g0, ... exist
//
// A torn tail (crash between a batch's write and its completion) at the end
// of a log — the final segment of a directory, or a single file — ends that
// log's replay silently: that is the format working as designed. A checksum
// mismatch, or a truncated record in a non-final segment (records missing
// mid-log), is corruption: walcheck warns, cross-checks the valid prefix
// anyway, and exits nonzero.
//
// Segmented directories may also hold checkpoint files (ckpt-*.ckpt) written
// by internal/checkpoint. walcheck verifies each one's checksum, seeds the
// site's version chains from the newest valid checkpoint before replaying the
// WAL suffix above its applied index, and cross-checks that the truncated WAL
// still meets the checkpoint (a first record more than one index above the
// checkpoint's applied index means truncation outran durability). Orphaned
// ckpt-*.ckpt.tmp files — a crash mid-checkpoint-write — are reported but are
// not corruption: recovery ignores them by design.
//
// Exit status: 0 consistent, 1 divergence, corruption, or unreadable log.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/message"
	"repro/internal/sgraph"
	"repro/internal/storage"
)

func main() {
	verbose := flag.Bool("v", false, "print per-key version chains")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: walcheck [-v] site0.wal [site1.wal ...]")
		os.Exit(1)
	}
	if err := runPaths(flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck:", err)
		os.Exit(1)
	}
}

// groupDirPat matches per-group subdirectory names as written by the
// sharded engine (message.GroupID.String).
var groupDirPat = regexp.MustCompile(`^g[0-9]+$`)

// groupDirs returns path's per-group WAL subdirectories (sorted), or nil
// when path is not a sharded site directory.
func groupDirs(path string) []string {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && groupDirPat.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

func runPaths(paths []string, verbose bool) error {
	// One recorder per replication group ("" = unsharded logs): version
	// chains are comparable only within a group.
	recs := map[string]*sgraph.Recorder{}
	recFor := func(group string) *sgraph.Recorder {
		r := recs[group]
		if r == nil {
			r = sgraph.NewRecorder()
			recs[group] = r
		}
		return r
	}
	corrupt := false
	logs := 0
	for i, path := range paths {
		site := message.SiteID(i)
		if groups := groupDirs(path); len(groups) > 0 {
			for _, g := range groups {
				c, err := checkLog(filepath.Join(path, g), site, recFor(g))
				if err != nil {
					return err
				}
				corrupt = corrupt || c
				logs++
			}
			continue
		}
		c, err := checkLog(path, site, recFor(""))
		if err != nil {
			return err
		}
		corrupt = corrupt || c
		logs++
	}
	groups := make([]string, 0, len(recs))
	for g := range recs {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	keyTotal := 0
	for _, g := range groups {
		orders, err := recs[g].VersionOrders()
		if err != nil {
			if g != "" {
				return fmt.Errorf("DIVERGENCE in group %s: %w", g, err)
			}
			return fmt.Errorf("DIVERGENCE: %w", err)
		}
		keyTotal += len(orders)
		if verbose {
			if g != "" {
				fmt.Printf("group %s:\n", g)
			}
			for key, chain := range orders {
				fmt.Printf("  %-20s", key)
				for _, w := range chain {
					fmt.Printf(" %v", w)
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("\nconsistent: %d keys across %d logs\n", keyTotal, logs)
	if corrupt {
		return fmt.Errorf("corruption detected (the valid prefixes are consistent)")
	}
	return nil
}

// checkLog replays one site's log (single file or segmented directory,
// with optional checkpoints) into rec and prints its summary line. It
// returns whether corruption was found; hard errors (unreadable paths)
// abort the audit.
func checkLog(path string, site message.SiteID, rec *sgraph.Recorder) (bool, error) {
	corrupt := false
	var floor uint64
	var ckptNote string
	isDir := storage.IsSegmentDir(path)
	if isDir {
		var ckptCorrupt bool
		floor, ckptNote, ckptCorrupt = seedFromCheckpoint(path, site, rec)
		corrupt = corrupt || ckptCorrupt
	}
	var records, writes, skipped int
	var first, last uint64
	scan := func(r storage.Record) error {
		if first == 0 {
			first = r.Index
		}
		if r.Index <= floor {
			// Already covered by the checkpoint: recovery skips these
			// too (the crash-between-rename-and-truncation window).
			skipped++
			return nil
		}
		records++
		writes += len(r.Writes)
		last = r.Index
		for _, w := range r.Writes {
			rec.RecordApply(site, w.Key, r.Txn)
		}
		return nil
	}
	var err error
	if isDir {
		err = storage.ReplaySegments(path, scan)
	} else {
		f, oerr := os.Open(path)
		if oerr != nil {
			return corrupt, oerr
		}
		err = storage.Replay(f, scan)
		f.Close()
		if err != nil {
			err = fmt.Errorf("%s: %w", path, err)
		}
	}
	if err != nil {
		if !errors.Is(err, storage.ErrCorrupt) {
			return corrupt, err
		}
		// The valid prefix was already delivered; cross-check it, warn
		// once, and fail at exit.
		fmt.Fprintf(os.Stderr, "walcheck: %v (checking the valid prefix)\n", err)
		corrupt = true
	}
	if floor > 0 && first > floor+1 {
		// The retained WAL does not reach back to the checkpoint: records
		// between applied index floor and `first` are gone from both the
		// checkpoint and the log.
		fmt.Fprintf(os.Stderr, "walcheck: %s: gap between checkpoint (applied index %d) and first WAL record (index %d)\n",
			path, floor, first)
		corrupt = true
	}
	if skipped > 0 {
		ckptNote += fmt.Sprintf(", %d records below the checkpoint", skipped)
	}
	fmt.Printf("%-24s site %v: %d commits, %d writes, last index %d%s\n", path, site, records, writes, last, ckptNote)
	return corrupt, nil
}

// seedFromCheckpoint audits the checkpoint files beside a segmented WAL:
// every ckpt-*.ckpt is checksum-verified (a mismatch is corruption), orphaned
// ckpt-*.ckpt.tmp files are reported, and the newest valid checkpoint seeds
// the recorder with the site's retained version chains. It returns the
// checkpoint's applied index (the replay floor), a note for the per-site
// summary line, and whether any checkpoint file was corrupt.
func seedFromCheckpoint(dir string, site message.SiteID, rec *sgraph.Recorder) (floor uint64, note string, corrupt bool) {
	files, err := checkpoint.Files(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walcheck: %s: listing checkpoints: %v\n", dir, err)
		return 0, "", true
	}
	var newest *checkpoint.Checkpoint
	for _, f := range files {
		ck, err := checkpoint.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "walcheck: %s: %v\n", f, err)
			corrupt = true
			continue
		}
		newest = ck // Files sorts ascending, so the last valid one is newest.
	}
	if tmps, err := checkpoint.TempFiles(dir); err == nil {
		for _, f := range tmps {
			fmt.Fprintf(os.Stderr, "walcheck: %s: orphaned checkpoint temp file (crash mid-write; ignored by recovery, safe to delete)\n", f)
		}
	}
	if newest == nil {
		return 0, "", corrupt
	}
	for _, e := range newest.Entries {
		for _, v := range e.Versions {
			rec.RecordApply(site, e.Key, v.Writer)
		}
	}
	return newest.Applied, fmt.Sprintf(", checkpoint at index %d (%d keys)", newest.Applied, len(newest.Entries)), corrupt
}
