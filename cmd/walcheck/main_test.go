package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/message"
	"repro/internal/storage"
)

// writeWAL materializes a log of the given records.
func writeWAL(t *testing.T, path string, recs []storage.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := storage.NewWAL(f)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func txn(site, seq int) message.TxnID {
	return message.TxnID{Site: message.SiteID(site), Seq: uint64(seq)}
}

func rec(idx uint64, id message.TxnID, kvs ...string) storage.Record {
	r := storage.Record{Index: idx, Txn: id}
	for i := 0; i+1 < len(kvs); i += 2 {
		r.Writes = append(r.Writes, message.KV{Key: message.Key(kvs[i]), Value: message.Value(kvs[i+1])})
	}
	return r
}

// buildWalcheck compiles the tool once per test run.
func buildWalcheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "walcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestWalcheckConsistentAndDivergent(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// Consistent pair: site 1 lags (prefix).
	a := filepath.Join(dir, "a.wal")
	b := filepath.Join(dir, "b.wal")
	writeWAL(t, a, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2", "y", "1"),
	})
	writeWAL(t, b, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
	})
	out, err := exec.Command(bin, "-v", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("consistent logs rejected: %v\n%s", err, out)
	}

	// Divergent pair: opposite apply orders for x.
	c := filepath.Join(dir, "c.wal")
	d := filepath.Join(dir, "d.wal")
	writeWAL(t, c, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
	})
	writeWAL(t, d, []storage.Record{
		rec(1, txn(1, 1), "x", "2"),
		rec(2, txn(0, 1), "x", "1"),
	})
	out, err = exec.Command(bin, c, d).CombinedOutput()
	if err == nil {
		t.Fatalf("divergent logs accepted:\n%s", out)
	}

	// Unreadable path.
	if _, err := exec.Command(bin, filepath.Join(dir, "missing.wal")).CombinedOutput(); err == nil {
		t.Fatal("missing file accepted")
	}
}
