package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/message"
	"repro/internal/netsim"
	"repro/internal/sgraph"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/storage"
)

// writeWAL materializes a log of the given records.
func writeWAL(t *testing.T, path string, recs []storage.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := storage.NewWAL(f)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func txn(site, seq int) message.TxnID {
	return message.TxnID{Site: message.SiteID(site), Seq: uint64(seq)}
}

func rec(idx uint64, id message.TxnID, kvs ...string) storage.Record {
	r := storage.Record{Index: idx, Txn: id}
	for i := 0; i+1 < len(kvs); i += 2 {
		r.Writes = append(r.Writes, message.KV{Key: message.Key(kvs[i]), Value: message.Value(kvs[i+1])})
	}
	return r
}

// buildWalcheck compiles the tool once per test run.
func buildWalcheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "walcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestWalcheckConsistentAndDivergent(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// Consistent pair: site 1 lags (prefix).
	a := filepath.Join(dir, "a.wal")
	b := filepath.Join(dir, "b.wal")
	writeWAL(t, a, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2", "y", "1"),
	})
	writeWAL(t, b, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
	})
	out, err := exec.Command(bin, "-v", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("consistent logs rejected: %v\n%s", err, out)
	}

	// Divergent pair: opposite apply orders for x.
	c := filepath.Join(dir, "c.wal")
	d := filepath.Join(dir, "d.wal")
	writeWAL(t, c, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
	})
	writeWAL(t, d, []storage.Record{
		rec(1, txn(1, 1), "x", "2"),
		rec(2, txn(0, 1), "x", "1"),
	})
	out, err = exec.Command(bin, c, d).CombinedOutput()
	if err == nil {
		t.Fatalf("divergent logs accepted:\n%s", out)
	}

	// Unreadable path.
	if _, err := exec.Command(bin, filepath.Join(dir, "missing.wal")).CombinedOutput(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWalcheckSegmentedDirs(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// Two sites, segmented logs, site 1 lagging by one batch.
	writeSegs := func(name string, recs []storage.Record) string {
		segDir := filepath.Join(dir, name)
		w, err := storage.OpenSegments(segDir, 64) // tiny: force rotation
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return segDir
	}
	full := []storage.Record{
		rec(1, txn(0, 1), "x", "1", "pad", "padpadpadpadpad"),
		rec(2, txn(1, 1), "x", "2", "pad", "padpadpadpadpad"),
		rec(3, txn(0, 2), "y", "1", "pad", "padpadpadpadpad"),
	}
	a := writeSegs("a", full)
	b := writeSegs("b", full[:2])
	if files, err := storage.SegmentFiles(a); err != nil || len(files) < 2 {
		t.Fatalf("rotation did not happen: %v %v", files, err)
	}
	out, err := exec.Command(bin, a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("consistent segmented logs rejected: %v\n%s", err, out)
	}
}

func TestWalcheckTornTailWithinBatch(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// A grouped batch torn mid-record at the tail: the valid prefix must be
	// recovered and cross-checked cleanly (exit 0, no corruption verdict).
	segDir := filepath.Join(dir, "torn")
	w, err := storage.OpenSegments(segDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGrouped(true)
	batch := []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
		rec(3, txn(0, 2), "y", "1"),
	}
	for _, r := range batch {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := storage.SegmentFiles(segDir)
	if err != nil || len(files) != 1 {
		t.Fatalf("segments: %v %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// A healthy peer holding the full prefix: torn site may lag, not diverge.
	peer := filepath.Join(dir, "peer.wal")
	writeWAL(t, peer, batch[:2])
	out, err := exec.Command(bin, segDir, peer).CombinedOutput()
	if err != nil {
		t.Fatalf("torn tail rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 commits") {
		t.Fatalf("torn site did not recover the 2-record prefix:\n%s", out)
	}
}

func TestWalcheckCheckpointedDir(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// Site 0: a checkpointed, truncated directory — the checkpoint covers
	// indexes 1-2 and the WAL holds only index 3. Site 1: a plain full log.
	segDir := filepath.Join(dir, "ckpt")
	w, err := storage.OpenSegments(segDir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(3, txn(0, 2), "y", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint.Checkpoint{
		Applied: 2,
		Entries: []message.SnapshotEntry{{
			Key: "x",
			Versions: []message.VersionRec{
				{Index: 1, Writer: txn(0, 1), Value: message.Value("1")},
				{Index: 2, Writer: txn(1, 1), Value: message.Value("2")},
			},
		}},
	}
	if _, _, err := checkpoint.Write(segDir, ck); err != nil {
		t.Fatal(err)
	}
	// An orphaned temp file must be reported without failing the check.
	tmp := filepath.Join(segDir, "ckpt-00000000000000ff.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	peer := filepath.Join(dir, "peer.wal")
	writeWAL(t, peer, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
		rec(3, txn(0, 2), "y", "1"),
	})
	out, err := exec.Command(bin, segDir, peer).CombinedOutput()
	if err != nil {
		t.Fatalf("checkpointed dir rejected: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "checkpoint at index 2 (1 keys)") {
		t.Fatalf("checkpoint not surfaced in the summary:\n%s", s)
	}
	if !strings.Contains(s, "orphaned checkpoint temp file") {
		t.Fatalf("orphaned temp file not reported:\n%s", s)
	}

	// Corrupt the checkpoint body: walcheck must flag it and exit nonzero
	// (the WAL alone no longer proves the truncated prefix).
	files, err := checkpoint.Files(segDir)
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files: %v %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, segDir, peer).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupt checkpoint accepted:\n%s", out)
	}
}

func TestWalcheckCheckpointWALGap(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	// The checkpoint says applied=1 but the surviving WAL starts at index 3:
	// record 2 is gone from both — truncation outran durability.
	segDir := filepath.Join(dir, "gap")
	w, err := storage.OpenSegments(segDir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(3, txn(0, 2), "y", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ck := &checkpoint.Checkpoint{
		Applied: 1,
		Entries: []message.SnapshotEntry{{
			Key:      "x",
			Versions: []message.VersionRec{{Index: 1, Writer: txn(0, 1), Value: message.Value("1")}},
		}},
	}
	if _, _, err := checkpoint.Write(segDir, ck); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, segDir).CombinedOutput()
	if err == nil {
		t.Fatalf("gapped checkpoint+WAL accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "gap between checkpoint") {
		t.Fatalf("gap not diagnosed:\n%s", out)
	}
}

func TestWalcheckCorruptRecordSurfacedOnce(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()

	path := filepath.Join(dir, "corrupt.wal")
	writeWAL(t, path, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
		rec(3, txn(0, 2), "y", "1"),
	})
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a bit in the last record's body
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	peer := filepath.Join(dir, "peer.wal")
	writeWAL(t, peer, []storage.Record{
		rec(1, txn(0, 1), "x", "1"),
		rec(2, txn(1, 1), "x", "2"),
	})
	out, err := exec.Command(bin, path, peer).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupt log accepted:\n%s", out)
	}
	s := string(out)
	if got := strings.Count(s, "corrupt record"); got != 1 {
		t.Fatalf("corruption surfaced %d times, want 1:\n%s", got, s)
	}
	// The valid 2-record prefix was still recovered and cross-checked.
	if !strings.Contains(s, "2 commits") || !strings.Contains(s, "consistent") {
		t.Fatalf("valid prefix not recovered/cross-checked:\n%s", s)
	}
}

// TestWalcheckShardedGroupDirs runs a 2-group sharded cluster where every
// site journals each replicated group into its own g<N>/ segmented WAL,
// then audits the per-site directories: walcheck must detect the sharded
// layout and cross-check version chains group by group.
func TestWalcheckShardedGroupDirs(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()
	const n = 4
	link := netsim.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond}
	c := sim.NewCluster(n, link, 31)
	engines := make([]*core.ShardedEngine, n)
	for i := 0; i < n; i++ {
		site := message.SiteID(i)
		rt := c.Runtime(site)
		cfg := core.Config{
			Shard:    &shard.Config{Groups: 2, RF: 3},
			Recorder: sgraph.NewRecorder(),
		}
		cfg.GroupWAL = func(g message.GroupID) *storage.WAL {
			w, err := storage.OpenSegments(filepath.Join(dir, fmt.Sprintf("site%d", site), g.String()), 1<<20)
			if err != nil {
				t.Fatalf("open WAL site %v group %v: %v", site, g, err)
			}
			return w
		}
		e, err := core.NewSharded(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
		c.Bind(site, e)
	}
	c.Start()

	ring := engines[0].Ring()
	keyIn := func(g message.GroupID, tag string) message.Key {
		for i := 0; i < 10000; i++ {
			k := message.Key(fmt.Sprintf("%s%d", tag, i))
			if ring.GroupOf(k) == g {
				return k
			}
		}
		t.Fatalf("no key in group %v", g)
		return ""
	}
	a, b := keyIn(0, "a"), keyIn(1, "b")
	commit := func(at time.Duration, site int, writes []message.KV) {
		c.Schedule(at, func() {
			e := engines[site]
			tx := e.Begin(false)
			for _, w := range writes {
				if err := e.Write(tx, w.Key, w.Value); err != nil {
					t.Errorf("write: %v", err)
				}
			}
			e.Commit(tx, func(core.Outcome, core.AbortReason) {})
		})
	}
	commit(10*time.Millisecond, 0, []message.KV{{Key: a, Value: message.Value("v1")}})
	commit(60*time.Millisecond, 3, []message.KV{{Key: b, Value: message.Value("v1")}})
	commit(200*time.Millisecond, 0, []message.KV{
		{Key: a, Value: message.Value("x")},
		{Key: b, Value: message.Value("x")},
	})
	commit(400*time.Millisecond, 1, []message.KV{{Key: a, Value: message.Value("v2")}})
	if _, err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		e.FlushPipelines()
	}

	args := []string{"-v"}
	for i := 0; i < n; i++ {
		args = append(args, filepath.Join(dir, fmt.Sprintf("site%d", i)))
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("consistent sharded WALs rejected: %v\n%s", err, out)
	}
	// 4 sites x 2 replicated groups each (RF=3 over 4 sites means every
	// site misses exactly one group... not so: groups {0,1,2} and {0,2,3},
	// sites 0 and 2 hold both) — 2+1+2+1 = 6 logs.
	if !strings.Contains(string(out), "6 logs") {
		t.Fatalf("per-group logs not all audited:\n%s", out)
	}
}

// TestWalcheckShardedGroupDivergence hand-writes two sites' g0 logs with
// the same two commits in OPPOSITE apply orders: the per-group cross-check
// must flag the divergence and name the group.
func TestWalcheckShardedGroupDivergence(t *testing.T) {
	bin := buildWalcheck(t)
	dir := t.TempDir()
	write := func(site string, first, second message.TxnID) {
		w, err := storage.OpenSegments(filepath.Join(dir, site, "g0"), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec(1, first, "k", "1")); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec(2, second, "k", "2")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("siteA", txn(0, 1), txn(1, 1))
	write("siteB", txn(1, 1), txn(0, 1))
	out, err := exec.Command(bin, filepath.Join(dir, "siteA"), filepath.Join(dir, "siteB")).CombinedOutput()
	if err == nil {
		t.Fatalf("diverging group logs accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "group g0") {
		t.Fatalf("divergence does not name the group:\n%s", out)
	}
}
