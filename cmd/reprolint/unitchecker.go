package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
)

// vetConfig is the JSON the go command writes for each package unit. Field
// names and meanings follow cmd/go's internal vet config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitcheck analyzes one package unit described by the cfg file and exits:
// 0 clean, 1 tool/typecheck error, 2 findings reported.
func unitcheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	// Resolve imports from the export data the go command staged for us:
	// ImportMap canonicalizes the path as written, PackageFile locates the
	// compiled export data for the canonical path.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return compImp.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	imported := readFacts(cfg.PackageVetx)
	path := analysis.TrimTestVariant(cfg.ImportPath)

	var diags []analysis.Diagnostic
	var suppressed []analysis.Suppressed
	var markers []string
	var funcFacts []analysis.FuncFact
	for _, a := range analysis.All() {
		pass := analysis.NewPass(a, fset, files, pkg, info, path, imported)
		if err := a.Run(pass); err != nil {
			fatalf("%s: %v", a.Name, err)
		}
		diags = append(diags, pass.Diagnostics()...)
		suppressed = append(suppressed, pass.SuppressedDiagnostics()...)
		markers = append(markers, pass.ExportedMarkers()...)
		funcFacts = append(funcFacts, pass.ExportedFuncFacts()...)
	}
	diags = append(diags, analysis.CheckAllowComments(fset, files)...)

	if cfg.VetxOutput != "" {
		if err := writeFacts(cfg.VetxOutput, markers, funcFacts); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if !cfg.VetxOnly {
		logFindings(fset, path, diags, suppressed)
	}
	if cfg.VetxOnly || len(diags) == 0 {
		os.Exit(0)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	os.Exit(2)
}

// finding is one JSONL record in the findings log: active findings plus
// allow-suppressed ones with their reasons, so CI can archive the
// complete audit trail (docs/STATIC_ANALYSIS.md).
type finding struct {
	Pos        string `json:"pos"`
	Package    string `json:"package"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// logFindings appends this unit's findings to $REPROLINT_FINDINGS as JSON
// lines. Appending keeps concurrent vet workers from clobbering each
// other; run with a fresh GOCACHE for a complete sweep, since vet skips
// cached-clean packages entirely.
func logFindings(fset *token.FileSet, pkgPath string, diags []analysis.Diagnostic, suppressed []analysis.Suppressed) {
	out := os.Getenv("REPROLINT_FINDINGS")
	if out == "" {
		return
	}
	var recs []finding
	for _, d := range diags {
		recs = append(recs, finding{Pos: fset.Position(d.Pos).String(), Package: pkgPath,
			Analyzer: d.Analyzer, Message: d.Message})
	}
	for _, s := range suppressed {
		recs = append(recs, finding{Pos: fset.Position(s.Pos).String(), Package: pkgPath,
			Analyzer: s.Analyzer, Message: s.Message, Suppressed: true, Reason: s.Reason})
	}
	if len(recs) == 0 {
		return
	}
	f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, r := range recs {
		enc.Encode(r)
	}
}

// vetxPayload is the gob document a unit writes for its dependents:
// looponly marker keys plus per-function summary facts (lockorder,
// nonblock, noalloc). Changing this layout is safe without versioning —
// the -V=full build ID hashes the executable, so a rebuilt tool busts
// vet's fact cache.
type vetxPayload struct {
	Markers []string
	Funcs   []analysis.FuncFact
}

// readFacts loads the facts exported by dependencies. A missing or
// unreadable vetx (e.g. a package vetted before facts existed) contributes
// nothing rather than failing the run.
func readFacts(vetx map[string]string) *analysis.Facts {
	out := &analysis.Facts{Markers: make(map[string]bool)}
	for _, file := range vetx {
		f, err := os.Open(file)
		if err != nil {
			continue
		}
		var payload vetxPayload
		if err := gob.NewDecoder(f).Decode(&payload); err == nil {
			for _, k := range payload.Markers {
				out.Markers[k] = true
			}
			out.Funcs = append(out.Funcs, payload.Funcs...)
		}
		f.Close()
	}
	return out
}

// writeFacts persists this unit's facts (own plus re-exported imports, so
// they flow transitively) for dependents.
func writeFacts(path string, markers []string, funcs []analysis.FuncFact) error {
	sort.Strings(markers)
	markers = dedupStrings(markers)
	sort.Slice(funcs, func(i, j int) bool {
		a, b := funcs[i], funcs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		return a.Detail < b.Detail
	})
	funcs = dedupFacts(funcs)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(vetxPayload{Markers: markers, Funcs: funcs})
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupFacts(s []analysis.FuncFact) []analysis.FuncFact {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "reprolint: "+format+"\n", args...)
	os.Exit(1)
}
