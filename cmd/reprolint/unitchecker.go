package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
)

// vetConfig is the JSON the go command writes for each package unit. Field
// names and meanings follow cmd/go's internal vet config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitcheck analyzes one package unit described by the cfg file and exits:
// 0 clean, 1 tool/typecheck error, 2 findings reported.
func unitcheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	// Resolve imports from the export data the go command staged for us:
	// ImportMap canonicalizes the path as written, PackageFile locates the
	// compiled export data for the canonical path.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return compImp.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	imported := readFacts(cfg.PackageVetx)
	path := analysis.TrimTestVariant(cfg.ImportPath)

	var diags []analysis.Diagnostic
	var markers []string
	for _, a := range analysis.All() {
		pass := analysis.NewPass(a, fset, files, pkg, info, path, imported)
		if err := a.Run(pass); err != nil {
			fatalf("%s: %v", a.Name, err)
		}
		diags = append(diags, pass.Diagnostics()...)
		markers = append(markers, pass.ExportedMarkers()...)
	}
	diags = append(diags, analysis.CheckAllowComments(fset, files)...)

	if cfg.VetxOutput != "" {
		if err := writeFacts(cfg.VetxOutput, markers); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		os.Exit(0)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	os.Exit(2)
}

// readFacts loads looponly markers exported by dependencies. A missing or
// unreadable vetx (e.g. a package vetted before facts existed) contributes
// nothing rather than failing the run.
func readFacts(vetx map[string]string) map[string]bool {
	out := make(map[string]bool)
	for _, file := range vetx {
		f, err := os.Open(file)
		if err != nil {
			continue
		}
		var keys []string
		if err := gob.NewDecoder(f).Decode(&keys); err == nil {
			for _, k := range keys {
				out[k] = true
			}
		}
		f.Close()
	}
	return out
}

// writeFacts persists this unit's markers (own plus re-exported imports, so
// facts flow transitively) for dependents.
func writeFacts(path string, markers []string) error {
	sort.Strings(markers)
	markers = dedup(markers)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(markers)
}

func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "reprolint: "+format+"\n", args...)
	os.Exit(1)
}
