// Command reprolint runs the repro static-analysis suite (see
// internal/analysis): detrand, maporder, looponly, pipeonly, lockorder,
// nonblock, and noalloc.
//
// It speaks the `go vet -vettool` unit-checker protocol, so the canonical
// invocation is
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=$PWD/bin/reprolint ./...
//
// Run standalone it re-execs itself under go vet:
//
//	reprolint ./...
//
// The protocol (mirroring golang.org/x/tools/go/analysis/unitchecker, which
// is deliberately not vendored here): the go command probes the tool with
// -V=full for a build ID, then invokes it once per package with a single
// JSON config-file argument describing the type-checked unit. Facts —
// looponly markers and per-function lockorder/nonblock/noalloc summaries —
// travel between packages through the .vetx files the go command threads
// from dependency to dependent.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags: the go command passes only the cfg file.
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	standalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `reprolint: static analysis for the repro replication engine

usage:
  reprolint [packages]            run all analyzers (default ./...)
  go vet -vettool=reprolint pkgs  same, explicitly under go vet

analyzers:
  detrand    forbid wall-clock time, global math/rand, os.Getenv in engine packages
  maporder   flag order-sensitive iteration over maps in engine packages
  looponly   flag calls to reprolint:looponly methods from goroutines
  pipeonly   flag WAL.Append/Store.Apply calls that bypass internal/commitpipe
  lockorder  detect lock-order cycles and double acquisition across the call graph
  nonblock   forbid blocking primitives in code reachable from the event loop
  noalloc    forbid allocation in reprolint:noalloc-marked functions, transitively

suppress a finding with a trailing comment (or one on the line above, or on
any line of the flagged statement):
  //reprolint:allow <analyzer>[,<analyzer>] <reason>

set REPROLINT_FINDINGS=<file> to append every finding — including
allow-suppressed ones with their reasons — as JSON lines for auditing.
`)
}

// printVersion answers the go command's -V=full probe. The build ID must
// change whenever the tool's behavior does, so vet's result cache does not
// serve stale findings; hashing the executable achieves that.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil)[:16])
}

// standalone re-execs under go vet so the go command handles package
// loading, export data, and fact threading.
func standalone(args []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(1)
	}
}
